(* Twins subsystem tests: schedule mechanics and boundary cases, the
   symmetry-reduced enumerator, determinism of twins campaigns across
   domain-pool sizes, and the pinned hotstuff-ns counterexample the
   enumerator rediscovered (EXPERIMENTS.md Fig 7's naive-pacemaker
   weakness, found from scratch by `bftsim twins`). *)

module Attack = Bftsim_attack
module Core = Bftsim_core
module Conf = Bftsim_conformance
module Twins = Bftsim_twins
module Ts = Attack.Twins_schedule

let sched ?(ids = [ 0 ]) ?(round_ms = 1000.) ?(leaders = []) rounds =
  { Ts.ids; round_ms; rounds; leaders }

(* --- schedule mechanics and heal boundaries ---------------------------- *)

let test_round_boundaries () =
  let t = sched [ [ [ 0; 4 ] ]; []; [ [ 1 ] ] ] in
  Alcotest.(check int) "round 0" 0 (Ts.round_at t ~at_ms:0.);
  Alcotest.(check int) "just before boundary" 0 (Ts.round_at t ~at_ms:999.999);
  (* A round boundary belongs to the round it opens, not the one it closes. *)
  Alcotest.(check int) "exact boundary" 1 (Ts.round_at t ~at_ms:1000.);
  Alcotest.(check int) "negative clamps" 0 (Ts.round_at t ~at_ms:(-5.));
  Alcotest.(check (float 0.)) "end" 3000. (Ts.end_ms t);
  Alcotest.(check bool) "round 0 separates" true (Ts.separated t ~src:0 ~dst:1 ~at_ms:0.);
  Alcotest.(check bool) "healed round" false (Ts.separated t ~src:0 ~dst:1 ~at_ms:1000.);
  Alcotest.(check bool) "round 2 separates" true (Ts.separated t ~src:1 ~dst:2 ~at_ms:2000.);
  (* At the exact end of the schedule everything is healed forever. *)
  Alcotest.(check bool) "post-schedule" false (Ts.separated t ~src:1 ~dst:2 ~at_ms:3000.);
  Alcotest.(check bool) "way past" false (Ts.separated t ~src:0 ~dst:1 ~at_ms:1e9)

let test_residual_group () =
  (* Unlisted nodes share the implicit residual block. *)
  let t = sched [ [ [ 0; 4 ] ] ] in
  Alcotest.(check bool) "residual together" false (Ts.separated t ~src:1 ~dst:3 ~at_ms:0.);
  Alcotest.(check bool) "explicit vs residual" true (Ts.separated t ~src:0 ~dst:1 ~at_ms:0.);
  Alcotest.(check bool) "within explicit" false (Ts.separated t ~src:0 ~dst:4 ~at_ms:0.)

let test_identity_mapping () =
  let t = sched ~ids:[ 0; 2 ] [ [] ] in
  Alcotest.(check int) "physical n" 7 (Ts.physical_n ~n:5 t);
  Alcotest.(check int) "twin of 0" 5 (Option.get (Ts.twin_instance ~n:5 t 0));
  Alcotest.(check int) "twin of 2" 6 (Option.get (Ts.twin_instance ~n:5 t 2));
  Alcotest.(check (option int)) "untwinned" None (Ts.twin_instance ~n:5 t 1);
  Alcotest.(check int) "logical of half" 2 (Ts.logical ~n:5 t 6);
  Alcotest.(check (list int)) "instances" [ 0; 5 ] (Ts.instances ~n:5 t 0)

let test_preserves_liveness () =
  let q = 3 in
  (* Pair isolated together: honest quorum intact. *)
  Alcotest.(check bool) "pair cut off" true
    (Ts.preserves_liveness ~n:4 ~quorum:q (sched [ [ [ 0; 4 ] ] ]));
  (* An honest node stuck with the pair is below quorum. *)
  Alcotest.(check bool) "honest dragged along" false
    (Ts.preserves_liveness ~n:4 ~quorum:q (sched [ [ [ 0; 4; 2 ] ] ]));
  Alcotest.(check bool) "healed schedule" true
    (Ts.preserves_liveness ~n:4 ~quorum:q (sched [ []; [] ]));
  Alcotest.(check bool) "isolated honest node" false
    (Ts.preserves_liveness ~n:4 ~quorum:q (sched [ [ [ 3 ] ] ]));
  (* The twin itself below quorum is fine: twins are the attack. *)
  Alcotest.(check bool) "isolated twin id" true
    (Ts.isolated_below_quorum ~n:4 ~quorum:q (sched [ [ [ 0; 4 ] ] ]) ~node:0);
  Alcotest.(check bool) "quorum-side honest" false
    (Ts.isolated_below_quorum ~n:4 ~quorum:q (sched [ [ [ 0; 4 ] ] ]) ~node:1)

let test_schedule_validation () =
  let reject msg t =
    match Ts.validate ~n:4 t with
    | () -> Alcotest.failf "%s: expected rejection" msg
    | exception Invalid_argument _ -> ()
  in
  Ts.validate ~n:4 (sched [ [ [ 0; 4 ] ]; [] ]);
  reject "empty ids" (sched ~ids:[] [ [] ]);
  reject "dup ids" (sched ~ids:[ 1; 1 ] [ [] ]);
  reject "id range" (sched ~ids:[ 4 ] [ [] ]);
  reject "round_ms" (sched ~round_ms:0. [ [] ]);
  reject "physical range" (sched [ [ [ 5 ] ] ]);
  reject "double placement" (sched [ [ [ 0; 1 ]; [ 1; 2 ] ] ]);
  reject "leader range" (sched ~leaders:[ 4 ] [ [] ])

let test_config_roundtrip () =
  let tw = sched ~round_ms:1500. ~leaders:[ 0; 0; 1 ] [ [ [ 0; 4 ] ]; []; [ [ 1; 2 ] ] ] in
  let config = Core.Config.make "pbft" ~n:4 ~twins:tw ~seed:3 in
  let back = Core.Config.of_keyvalues (Core.Config.to_keyvalues config) in
  match back with
  | Error e -> Alcotest.failf "round-trip failed: %s" e
  | Ok back ->
    Alcotest.(check bool) "twins survives the key-value round trip" true
      (back.Core.Config.twins = config.Core.Config.twins)

(* --- enumerator -------------------------------------------------------- *)

let test_enumerator_stats () =
  (* CI smoke contract: the enumeration space and its dedup ratio are a
     pure function of (n, rounds) and must not drift silently. *)
  let _, stats = Twins.Enumerate.enumerate ~n:4 ~rounds:3 in
  Alcotest.(check int) "raw schedules" 6748 stats.Twins.Enumerate.enumerated;
  Alcotest.(check int) "unique schedules" 574 stats.Twins.Enumerate.unique;
  let schedules, stats2 = Twins.Enumerate.enumerate ~n:4 ~rounds:2 in
  Alcotest.(check int) "unique at 2 rounds" stats2.Twins.Enumerate.unique
    (List.length schedules)

let test_enumerator_canonical () =
  (* Every emitted schedule is unique under its own canonical key, and the
     compiled schedules all validate. *)
  let schedules, _ = Twins.Enumerate.enumerate ~n:4 ~rounds:2 in
  let keys = List.map (Twins.Enumerate.canonical_key ~n:4) schedules in
  Alcotest.(check int) "keys distinct" (List.length schedules)
    (List.length (List.sort_uniq compare keys));
  List.iter
    (fun s ->
      Ts.validate ~n:4 (Twins.Enumerate.to_twins_schedule ~n:4 ~round_ms:1000. s))
    schedules

let test_enumerator_order_deterministic () =
  let a, _ = Twins.Enumerate.enumerate ~n:4 ~rounds:3 in
  let b, _ = Twins.Enumerate.enumerate ~n:4 ~rounds:3 in
  Alcotest.(check bool) "same order" true (a = b)

(* --- campaign determinism across domain pools -------------------------- *)

let report_signature (r : Conf.Harness.report) =
  let failure (f : Conf.Harness.failure) =
    Printf.sprintf "%s | %s | shrunk=%s"
      (Conf.Scenario.describe f.Conf.Harness.scenario)
      (String.concat "; " (List.map Conf.Oracle.describe f.Conf.Harness.verdicts))
      (Core.Config.describe f.Conf.Harness.shrunk)
  in
  Printf.sprintf "scenarios=%d checks=%d crashed=%d\n%s" r.Conf.Harness.scenarios
    r.Conf.Harness.checks
    (List.length r.Conf.Harness.crashed)
    (String.concat "\n" (List.map failure r.Conf.Harness.failures))

let test_campaign_jobs_deterministic () =
  (* The same twins campaign must produce a bit-identical report whether
     checks fan out over 1, 2 or 4 domains. *)
  let params =
    { Twins.Synth.default_params with Twins.Synth.round_ms = 48_000.; max_time_ms = 240_000. }
  in
  let scenarios, _ =
    Twins.Synth.synthesize ~protocols:[ "hotstuff-ns"; "pbft" ] ~budget:4 ~params ()
  in
  let run jobs =
    report_signature (Conf.Harness.fuzz_scenarios ~mode:"twins" ~jobs ~shrink_budget:8 ~seed:1 scenarios)
  in
  let r1 = run 1 in
  Alcotest.(check string) "jobs 1 = jobs 2" r1 (run 2);
  Alcotest.(check string) "jobs 1 = jobs 4" r1 (run 4)

(* --- the rediscovered hotstuff-ns counterexample ----------------------- *)

(* The exact shrunk bundle `bftsim twins --protocols hotstuff-ns --budget 16
   --round-ms 48000` produces (twins-out/...-hotstuff-ns-n4-seed1): the twin
   pair is cut off from the honest quorum, with one stale half rejoining
   mid-schedule.  Round-robin hands the twinned identity both its proposal
   slots and the vote-aggregation slot for views = 3 mod 4, so three-chain
   commits never form; the naive pacemaker never resets its doubling, and
   by the time the partition heals the next view timer fires only at
   ~254 s — past the 240 s cap.  Timeout-certificate pacemakers (hotstuff,
   cogsworth, librabft) recover within O(lambda) of the heal. *)
let counterexample_kvs =
  [
    ("protocol", "hotstuff-ns");
    ("n", "4");
    ("seed", "1");
    ("lambda", "1000");
    ("delay", "constant:100");
    ("max_time_ms", "240000");
    ("target", "1");
    ("inputs", "distinct");
    ("twins", "0");
    ("twins_rounds", "0,4|1,2,3;0|4,1,2,3;0,4|1,2,3");
    ("twins_round_ms", "48000");
  ]

let counterexample_config () =
  match Core.Config.of_keyvalues counterexample_kvs with
  | Ok c -> c
  | Error e -> Alcotest.failf "counterexample config did not parse: %s" e

let test_hotstuff_ns_regression () =
  let config = counterexample_config () in
  let verdicts, result = Conf.Harness.check_config ~determinism:false ~expect_live:true config in
  Alcotest.(check bool) "does not reach the target" true
    (result.Core.Controller.outcome <> Core.Controller.Reached_target);
  let liveness = List.filter (fun v -> v.Conf.Oracle.oracle = "liveness") verdicts in
  Alcotest.(check int) "exactly the liveness verdict" 1 (List.length liveness);
  Alcotest.(check int) "no safety verdicts" 0 (List.length verdicts - List.length liveness)

let test_hotstuff_ns_replay_identical () =
  (* The counterexample is a replayable bundle: running it twice gives
     byte-identical traces and decisions. *)
  let report = Core.Validator.check_determinism (counterexample_config ()) in
  Alcotest.(check bool) "decisions match" true report.Core.Validator.decisions_match;
  Alcotest.(check (option bool)) "traces match" (Some true) report.Core.Validator.trace_match

let test_peers_survive_counterexample () =
  (* The same schedule must NOT kill the fixed pacemakers: this is what
     makes the hotstuff-ns finding a protocol weakness rather than an
     impossible scenario. *)
  List.iter
    (fun protocol ->
      let kvs =
        List.map
          (fun (k, v) -> if k = "protocol" then (k, protocol) else (k, v))
          counterexample_kvs
      in
      match Core.Config.of_keyvalues kvs with
      | Error e -> Alcotest.failf "%s config: %s" protocol e
      | Ok config ->
        let verdicts, _ = Conf.Harness.check_config ~determinism:false ~expect_live:true config in
        Alcotest.(check (list string))
          (protocol ^ " passes the counterexample schedule")
          []
          (List.map Conf.Oracle.describe verdicts))
    [ "pbft"; "librabft"; "hotstuff-cogsworth" ]

(* --- fault-schedule window validation (satellite) ---------------------- *)

let test_fault_schedule_windows () =
  let reject msg steps =
    match Attack.Fault_schedule.validate ~n:4 steps with
    | () -> Alcotest.failf "%s: expected rejection" msg
    | exception Invalid_argument _ -> ()
  in
  let crash node at_ms = { Attack.Fault_schedule.at_ms; action = Attack.Fault_schedule.Crash node } in
  let recover node at_ms =
    { Attack.Fault_schedule.at_ms; action = Attack.Fault_schedule.Recover node }
  in
  Attack.Fault_schedule.validate ~n:4 [ crash 1 0.; recover 1 500.; crash 1 1000. ];
  reject "overlapping crash windows" [ crash 1 0.; crash 1 500. ];
  reject "recover without crash" [ recover 2 100. ];
  reject "re-crash before recovery" [ crash 0 0.; recover 0 800.; crash 0 400. ]

let test_partition_window_validation () =
  let reject msg attack =
    let config = Core.Config.make "pbft" ~n:4 in
    match Core.Config.validate { config with Core.Config.attack } with
    | () -> Alcotest.failf "%s: expected rejection" msg
    | exception Invalid_argument _ -> ()
  in
  reject "empty window"
    (Core.Config.Partition { first_size = 2; start_ms = 1000.; heal_ms = 1000.; drop = true });
  reject "inverted window"
    (Core.Config.Partition { first_size = 2; start_ms = 1000.; heal_ms = 400.; drop = false });
  reject "negative start"
    (Core.Config.Partition { first_size = 2; start_ms = -1.; heal_ms = 400.; drop = false });
  reject "degenerate split"
    (Core.Config.Partition { first_size = 4; start_ms = 0.; heal_ms = 400.; drop = false })

let () =
  Alcotest.run "twins"
    [
      ( "schedule",
        [
          Alcotest.test_case "round boundaries and heal" `Quick test_round_boundaries;
          Alcotest.test_case "residual group" `Quick test_residual_group;
          Alcotest.test_case "identity mapping" `Quick test_identity_mapping;
          Alcotest.test_case "preserves_liveness" `Quick test_preserves_liveness;
          Alcotest.test_case "validation" `Quick test_schedule_validation;
          Alcotest.test_case "config round-trip" `Quick test_config_roundtrip;
        ] );
      ( "enumerator",
        [
          Alcotest.test_case "stats stable" `Quick test_enumerator_stats;
          Alcotest.test_case "canonical dedup" `Quick test_enumerator_canonical;
          Alcotest.test_case "deterministic order" `Quick test_enumerator_order_deterministic;
        ] );
      ( "campaign",
        [ Alcotest.test_case "jobs 1/2/4 bit-identical" `Slow test_campaign_jobs_deterministic ] );
      ( "regression",
        [
          Alcotest.test_case "hotstuff-ns pacemaker stall" `Slow test_hotstuff_ns_regression;
          Alcotest.test_case "counterexample replays byte-identically" `Slow
            test_hotstuff_ns_replay_identical;
          Alcotest.test_case "fixed pacemakers survive it" `Slow test_peers_survive_counterexample;
        ] );
      ( "windows",
        [
          Alcotest.test_case "fault-schedule windows" `Quick test_fault_schedule_windows;
          Alcotest.test_case "partition windows" `Quick test_partition_window_validation;
        ] );
    ]
