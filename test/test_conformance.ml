(* Tests for the conformance subsystem: protocol oracles, the randomized
   scenario generator, counterexample shrinking, repro bundles, and the
   mutation hook the CI smoke step relies on. *)

module Core = Bftsim_core
module Conf = Bftsim_conformance
module Net = Bftsim_net
module Protocols = Bftsim_protocols

let clean_config ?(protocol = "pbft") ?(n = 8) ?(seed = 1) () =
  Core.Config.make protocol ~n ~seed ~delay:(Net.Delay_model.Constant 50.)

let run config = Core.Controller.run { config with Core.Config.record_trace = true }

let contains ~needle haystack =
  let nl = String.length needle and hl = String.length haystack in
  let rec scan i = i + nl <= hl && (String.sub haystack i nl = needle || scan (i + 1)) in
  nl = 0 || scan 0

(* --- Oracles --- *)

let test_oracle_clean_run () =
  let config = clean_config () in
  let verdicts = Conf.Oracle.check_result config (run config) in
  Alcotest.(check int) "no verdicts on a clean pbft run" 0 (List.length verdicts)

let test_oracle_agreement_flags_divergence () =
  let config = clean_config () in
  let r = run config in
  let tampered =
    { r with Core.Controller.decisions = [ (0, [ "alpha" ]); (1, [ "beta" ]) ]; trace = None }
  in
  let verdicts = Conf.Oracle.agreement config tampered in
  Alcotest.(check bool) "divergent decisions flagged" true
    (List.exists (fun v -> v.Conf.Oracle.oracle = "agreement") verdicts)

let test_oracle_integrity_flags () =
  let config = clean_config ~n:8 () in
  let config = { config with Core.Config.crashed = [ 3 ] } in
  let r = run config in
  let dup = { r with Core.Controller.decisions = [ (0, [ "a" ]); (0, [ "a" ]) ]; trace = None } in
  Alcotest.(check bool) "duplicate node row flagged" true
    (List.exists (fun v -> v.Conf.Oracle.oracle = "integrity") (Conf.Oracle.integrity config dup));
  let crashed_decided =
    { r with Core.Controller.decisions = [ (3, [ "a" ]) ]; trace = None }
  in
  Alcotest.(check bool) "config-crashed decider flagged" true
    (List.exists
       (fun v -> v.Conf.Oracle.oracle = "integrity")
       (Conf.Oracle.integrity config crashed_decided))

let test_oracle_decide_once () =
  let config = clean_config ~protocol:"add-v1" ~n:8 () in
  let r = run config in
  let twice = { r with Core.Controller.decisions = [ (0, [ "v0"; "v0" ]) ]; trace = None } in
  Alcotest.(check bool) "double decision in one-shot consensus flagged" true
    (List.exists (fun v -> v.Conf.Oracle.oracle = "integrity") (Conf.Oracle.integrity config twice))

let test_oracle_validity_flags () =
  let config = clean_config () in
  let r = run config in
  let bogus = { r with Core.Controller.decisions = [ (0, [ "zzz/slot0" ]) ]; trace = None } in
  Alcotest.(check bool) "underived value flagged" true
    (List.exists (fun v -> v.Conf.Oracle.oracle = "validity") (Conf.Oracle.validity config bogus))

let test_oracle_validity_chained_exempt () =
  let config = clean_config ~protocol:"hotstuff-ns" () in
  let r = run config in
  Alcotest.(check int) "chained digests are not validity violations" 0
    (List.length (Conf.Oracle.validity config r))

let test_oracle_recovery () =
  let chaos =
    Bftsim_attack.Fault_schedule.crash_and_restart ~nodes:[ 2 ] ~crash_ms:200. ~restart_ms:700.
  in
  let config =
    Core.Config.make "pbft" ~n:7 ~seed:42 ~chaos ~delay:(Net.Delay_model.Constant 50.)
  in
  let r = Core.Controller.run config in
  Alcotest.(check int) "clean recovery accepted" 0 (List.length (Conf.Oracle.recovery config r));
  (* A restarted node whose catch-up rewrote history is flagged... *)
  let conflicting =
    {
      r with
      Core.Controller.decisions =
        List.map
          (fun (node, values) -> if node = 2 then (node, [ "bogus" ]) else (node, values))
          r.Core.Controller.decisions;
    }
  in
  Alcotest.(check bool) "conflicting re-commit flagged" true
    (List.exists
       (fun v -> contains ~needle:"committed" (Conf.Oracle.describe v))
       (Conf.Oracle.recovery config conflicting));
  (* ...and one stuck in a stale view never rejoined. *)
  let fv = Array.mapi (fun i _ -> if i = 2 then 0 else 10) r.Core.Controller.final_views in
  let stale = { r with Core.Controller.final_views = fv } in
  Alcotest.(check bool) "stale view flagged" true
    (List.exists
       (fun v -> contains ~needle:"never rejoined" (Conf.Oracle.describe v))
       (Conf.Oracle.recovery config stale));
  (* Without restart steps the oracle is inert even on tampered results. *)
  let norestart = Core.Config.make "pbft" ~n:7 ~seed:42 ~delay:(Net.Delay_model.Constant 50.) in
  Alcotest.(check int) "inert without restarts" 0
    (List.length (Conf.Oracle.recovery norestart conflicting))

let test_oracle_qc_sanity_clean () =
  for n = 4 to 40 do
    let verdicts = Conf.Oracle.qc_sanity ~n in
    Alcotest.(check int) (Printf.sprintf "qc-sanity holds at n=%d" n) 0 (List.length verdicts)
  done

let with_mutation m f =
  Protocols.Quorum.set_mutation (Some m);
  Fun.protect ~finally:(fun () -> Protocols.Quorum.set_mutation None) f

let test_oracle_qc_sanity_catches_mutation () =
  with_mutation Protocols.Quorum.Quorum_minus_one (fun () ->
      let verdicts = Conf.Oracle.qc_sanity ~n:10 in
      Alcotest.(check bool) "quorum-minus-one breaks intersection" true
        (List.exists (fun v -> v.Conf.Oracle.oracle = "qc-sanity") verdicts))

(* --- Scenario generation --- *)

let prop_scenarios_valid =
  QCheck.Test.make ~count:60 ~name:"generated scenarios are valid configs"
    QCheck.(make (Conf.Scenario.gen ()))
    (fun s ->
      Core.Config.validate s.Conf.Scenario.config;
      true)

let prop_scenarios_respect_model =
  QCheck.Test.make ~count:60 ~name:"synchronous protocols get bounded delays"
    QCheck.(make (Conf.Scenario.gen ()))
    (fun s ->
      let config = s.Conf.Scenario.config in
      let p = Protocols.Registry.find_exn config.Core.Config.protocol in
      match Protocols.Protocol_intf.model p with
      | Protocols.Protocol_intf.Synchronous -> (
        match Net.Delay_model.upper_bound config.Core.Config.delay with
        | Some b -> b <= config.Core.Config.lambda_ms
        | None -> false)
      | _ -> true)

let prop_scenarios_within_tolerance =
  QCheck.Test.make ~count:60 ~name:"crashed count stays within (n-1)/3"
    QCheck.(make (Conf.Scenario.gen ()))
    (fun s ->
      let config = s.Conf.Scenario.config in
      List.length config.Core.Config.crashed
      <= Protocols.Quorum.max_faulty config.Core.Config.n)

let test_scenario_sample_deterministic () =
  let a = Conf.Scenario.sample ~budget:10 ~seed:7 () in
  let b = Conf.Scenario.sample ~budget:10 ~seed:7 () in
  Alcotest.(check (list string)) "same seed, same batch"
    (List.map Conf.Scenario.describe a)
    (List.map Conf.Scenario.describe b);
  let c = Conf.Scenario.sample ~budget:10 ~seed:8 () in
  Alcotest.(check bool) "different seed, different batch" false
    (List.map Conf.Scenario.describe a = List.map Conf.Scenario.describe c)

let test_scenario_family_filter () =
  let batch =
    Conf.Scenario.sample ~families:[ Conf.Scenario.Failstop ] ~budget:20 ~seed:3 ()
  in
  List.iter
    (fun s ->
      match s.Conf.Scenario.family with
      | Conf.Scenario.Failstop | Conf.Scenario.Passthrough -> ()
      | f -> Alcotest.fail ("unexpected family " ^ Conf.Scenario.family_to_string f))
    batch

(* --- Config round-trip (the bundle format) --- *)

let prop_config_roundtrip =
  QCheck.Test.make ~count:60 ~name:"to_keyvalues round-trips through of_keyvalues"
    QCheck.(make (Conf.Scenario.gen ()))
    (fun s ->
      let config = s.Conf.Scenario.config in
      match Core.Config.of_keyvalues (Core.Config.to_keyvalues config) with
      | Error e -> QCheck.Test.fail_report e
      | Ok parsed ->
        (* record_trace/view_sample_ms are per-invocation switches; the
           scenario generator leaves them at defaults, so full structural
           equality is the right check here. *)
        if parsed = config then true
        else begin
          let open Core.Config in
          let fields =
            [
              ("protocol", parsed.protocol = config.protocol);
              ("n", parsed.n = config.n);
              ("crashed", parsed.crashed = config.crashed);
              ("lambda_ms", parsed.lambda_ms = config.lambda_ms);
              ("delay", parsed.delay = config.delay);
              ("seed", parsed.seed = config.seed);
              ("attack", parsed.attack = config.attack);
              ("decisions_target", parsed.decisions_target = config.decisions_target);
              ("max_time_ms", parsed.max_time_ms = config.max_time_ms);
              ("max_events", parsed.max_events = config.max_events);
              ("inputs", parsed.inputs = config.inputs);
              ("transport", parsed.transport = config.transport);
              ("costs", parsed.costs = config.costs);
              ("record_trace", parsed.record_trace = config.record_trace);
              ("view_sample_ms", parsed.view_sample_ms = config.view_sample_ms);
              ("chaos", parsed.chaos = config.chaos);
              ("watchdog", parsed.watchdog = config.watchdog);
              ("check_validity", parsed.check_validity = config.check_validity);
              ("naive_reset", parsed.naive_reset = config.naive_reset);
              ("telemetry", parsed.telemetry = config.telemetry);
            ]
          in
          let bad = List.filter_map (fun (k, ok) -> if ok then None else Some k) fields in
          QCheck.Test.fail_report
            (Printf.sprintf "reparse differs in: %s\nkeyvalues: %s"
               (String.concat ", " bad)
               (String.concat "; "
                  (List.map (fun (k, v) -> k ^ "=" ^ v) (Core.Config.to_keyvalues config))))
        end)

(* --- Shrinking --- *)

let test_shrink_minimizes_n_and_seed () =
  let config =
    Core.Config.make "pbft" ~n:16 ~seed:909090 ~crashed:[ 2; 5 ]
      ~delay:(Net.Delay_model.normal ~mu:250. ~sigma:50.)
      ~attack:(Core.Config.Extra_delay { extra_ms = 50. })
  in
  (* Pure predicate (no simulation): fails whenever n >= 5, whatever else. *)
  let shrunk, attempts = Conf.Shrink.minimize ~fails:(fun c -> c.Core.Config.n >= 5) config in
  Alcotest.(check int) "n minimized to the smallest failing value" 5 shrunk.Core.Config.n;
  Alcotest.(check bool) "seed simplified" true (shrunk.Core.Config.seed <= 3);
  Alcotest.(check bool) "attack dropped" true (shrunk.Core.Config.attack = Core.Config.No_attack);
  Alcotest.(check (list int)) "crashed dropped" [] shrunk.Core.Config.crashed;
  Alcotest.(check bool) "attempts accounted" true (attempts > 0)

let test_shrink_respects_budget () =
  let config = Core.Config.make "pbft" ~n:16 ~seed:12345 in
  let evals = ref 0 in
  let shrunk, attempts =
    Conf.Shrink.minimize ~budget:3
      ~fails:(fun _ ->
        incr evals;
        true)
      config
  in
  Alcotest.(check bool) "stopped at budget" true (attempts <= 3 + List.length (Conf.Shrink.candidates shrunk));
  Alcotest.(check bool) "predicate not over-evaluated" true (!evals <= 6)

let test_shrink_candidates_valid () =
  let config =
    Core.Config.make "hotstuff-ns" ~n:13 ~seed:42 ~crashed:[ 1; 2 ]
      ~chaos:(Bftsim_attack.Fault_schedule.crash_and_recover ~nodes:[ 3 ] ~crash_ms:100. ~recover_ms:900.)
  in
  List.iter (fun c -> Core.Config.validate c) (Conf.Shrink.candidates config)

(* --- Harness + bundles + mutation (the CI smoke path, in-process) --- *)

let test_harness_clean_scenarios () =
  let report =
    Conf.Harness.fuzz ~protocols:[ "pbft"; "add-v1" ]
      ~families:[ Conf.Scenario.Passthrough; Conf.Scenario.Failstop ] ~jobs:1 ~budget:4 ~seed:2 ()
  in
  Alcotest.(check int) "scenarios run" 4 report.Conf.Harness.scenarios;
  Alcotest.(check int) "no failures" 0 (List.length report.Conf.Harness.failures)

let test_harness_catches_quorum_mutation () =
  with_mutation Protocols.Quorum.Quorum_minus_one (fun () ->
      let config = clean_config ~n:10 () in
      let verdicts, _ = Conf.Harness.check_config ~determinism:false config in
      Alcotest.(check bool) "mutation caught" true
        (List.exists (fun v -> v.Conf.Oracle.oracle = "qc-sanity") verdicts);
      (* Shrink the counterexample: qc-sanity fails at any n with the
         mutation active, so the minimum config must reach n = 4. *)
      let fails c = fst (Conf.Harness.check_config ~determinism:false c) <> [] in
      let shrunk, _ = Conf.Shrink.minimize ~fails config in
      Alcotest.(check int) "shrunk to the smallest system" 4 shrunk.Core.Config.n)

let test_bundle_roundtrip () =
  let dir = Filename.concat (Filename.get_temp_dir_name ()) "bftsim-conformance-test" in
  let config = clean_config ~n:8 ~seed:5 () in
  let result = run config in
  let verdicts = [ { Conf.Oracle.oracle = "agreement"; detail = "synthetic" } ] in
  let bundle =
    Conf.Bundle.write ~dir ~name:"case-0" ~original:(clean_config ~n:16 ~seed:5 ())
      ~shrunk:config ~verdicts ~result ()
  in
  List.iter
    (fun file ->
      Alcotest.(check bool) (file ^ " exists") true
        (Sys.file_exists (Filename.concat bundle file)))
    [ "config.txt"; "original.txt"; "report.txt"; "trace.txt" ];
  (* The persisted config must parse back to the exact failing config. *)
  let ic = open_in (Filename.concat bundle "config.txt") in
  let kvs = ref [] in
  (try
     while true do
       let line = String.trim (input_line ic) in
       if String.length line > 0 && line.[0] <> '#' then
         match String.index_opt line '=' with
         | Some i ->
           kvs :=
             ( String.trim (String.sub line 0 i),
               String.trim (String.sub line (i + 1) (String.length line - i - 1)) )
             :: !kvs
         | None -> ()
     done
   with End_of_file -> ());
  close_in ic;
  match Core.Config.of_keyvalues (List.rev !kvs) with
  | Error e -> Alcotest.fail ("bundle config does not parse: " ^ e)
  | Ok parsed -> Alcotest.(check bool) "bundle config round-trips" true (parsed = config)

(* --- Validator divergence symmetry (regression for the one-sided scan) --- *)

let test_validator_divergence_symmetric () =
  let r = run (clean_config ()) in
  let ground = { r with Core.Controller.decisions = [ (0, [ "a" ]) ]; trace = None } in
  let replayed =
    { r with Core.Controller.decisions = [ (0, [ "a" ]); (1, [ "b" ]) ]; trace = None }
  in
  (match Core.Validator.decisions_divergence ground replayed with
  | Some d -> Alcotest.(check bool) "extra replayed decider named" true (contains ~needle:"node 1" d)
  | None -> Alcotest.fail "node that decided only in the replayed run not reported");
  match Core.Validator.decisions_divergence replayed ground with
  | Some d -> Alcotest.(check bool) "missing decider named" true (contains ~needle:"node 1" d)
  | None -> Alcotest.fail "node missing from the replayed run not reported"

(* --- Fingerprints --- *)

let test_fingerprint_stable_and_sensitive () =
  let a = run (clean_config ~seed:3 ()) in
  let b = run (clean_config ~seed:3 ()) in
  let c = run (clean_config ~seed:4 ()) in
  Alcotest.(check string) "same seed, same fingerprint" (Conf.Fingerprint.of_result a)
    (Conf.Fingerprint.of_result b);
  Alcotest.(check bool) "different seed, different fingerprint" false
    (Conf.Fingerprint.of_result a = Conf.Fingerprint.of_result c);
  match (a.Core.Controller.trace, b.Core.Controller.trace) with
  | Some ta, Some tb ->
    Alcotest.(check string) "trace fingerprints agree" (Conf.Fingerprint.of_trace ta)
      (Conf.Fingerprint.of_trace tb)
  | _ -> Alcotest.fail "traces missing"

let () =
  Alcotest.run "conformance"
    [
      ( "oracle",
        [
          Alcotest.test_case "clean run" `Quick test_oracle_clean_run;
          Alcotest.test_case "agreement flags divergence" `Quick
            test_oracle_agreement_flags_divergence;
          Alcotest.test_case "integrity flags" `Quick test_oracle_integrity_flags;
          Alcotest.test_case "decide-once" `Quick test_oracle_decide_once;
          Alcotest.test_case "validity flags" `Quick test_oracle_validity_flags;
          Alcotest.test_case "validity exempts chained" `Quick test_oracle_validity_chained_exempt;
          Alcotest.test_case "recovery oracle" `Quick test_oracle_recovery;
          Alcotest.test_case "qc-sanity clean" `Quick test_oracle_qc_sanity_clean;
          Alcotest.test_case "qc-sanity catches mutation" `Quick
            test_oracle_qc_sanity_catches_mutation;
        ] );
      ( "scenario",
        [
          QCheck_alcotest.to_alcotest prop_scenarios_valid;
          QCheck_alcotest.to_alcotest prop_scenarios_respect_model;
          QCheck_alcotest.to_alcotest prop_scenarios_within_tolerance;
          Alcotest.test_case "deterministic sampling" `Quick test_scenario_sample_deterministic;
          Alcotest.test_case "family filter" `Quick test_scenario_family_filter;
        ] );
      ("config", [ QCheck_alcotest.to_alcotest prop_config_roundtrip ]);
      ( "shrink",
        [
          Alcotest.test_case "minimizes n and seed" `Quick test_shrink_minimizes_n_and_seed;
          Alcotest.test_case "respects budget" `Quick test_shrink_respects_budget;
          Alcotest.test_case "candidates stay valid" `Quick test_shrink_candidates_valid;
        ] );
      ( "harness",
        [
          Alcotest.test_case "clean scenarios pass" `Slow test_harness_clean_scenarios;
          Alcotest.test_case "catches quorum mutation" `Quick test_harness_catches_quorum_mutation;
          Alcotest.test_case "bundle round-trip" `Quick test_bundle_roundtrip;
        ] );
      ( "validator",
        [
          Alcotest.test_case "divergence is symmetric" `Quick test_validator_divergence_symmetric;
        ] );
      ( "fingerprint",
        [
          Alcotest.test_case "stable and sensitive" `Quick test_fingerprint_stable_and_sensitive;
        ] );
    ]
