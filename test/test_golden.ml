(* Golden-fingerprint regression tests: one canonical configuration per
   paper protocol, with the result fingerprint pinned.  Any change to the
   engine, a protocol, the RNG, or the delay pipeline that alters observable
   behaviour shows up here as a mismatch — the canonical form is printed so
   the diff against the old behaviour is readable.  If a change is
   intentional, re-pin the hashes from that output. *)

module Core = Bftsim_core
module Conf = Bftsim_conformance
module Net = Bftsim_net

(* The paper's eight protocols, each under a fixed small configuration:
   n = 7 (tight 3f+1), deterministic constant delays, fixed seed. *)
let pinned =
  [
    ("add-v1", "2a4031f9a467f8112e962b26366bf8229c6b27c2e8b695cc7cc776fdcc6e16d1");
    ("add-v2", "9ddd9f2b510c42b0ea60c5a39cd56b0cd978f34c8c80e10f125cc634edd03947");
    ("add-v3", "ac499d7a6f527ca967ddb6ce89d3bcb68bd244475bcd829bac862703ea27a3c3");
    ("algorand", "6e92819ddd2d9dead805579c669e6faf50f070946d630d24ea962681c046cc11");
    ("async-ba", "ab1f1860a4d3850df970adc4d2f4cbc52bb4c231020fea5b26bd7ac22c4f649b");
    ("pbft", "ff1b14aee54de19192a6ca8666d7ecceeff87afaaddd00a3a45f5e6ccdfada90");
    ("hotstuff-ns", "817e653dfb9d523e4aad86854c1a0c2aeeaa053720a1b8285ad081e73f3f83b2");
    ("librabft", "05ccd33fe03e02170408afa179d0f58b2e1b1a10d8b4512859738c4944dfbb44");
  ]

let canonical_config protocol =
  Core.Config.make protocol ~n:7 ~seed:42 ~delay:(Net.Delay_model.Constant 100.)
    ~record_trace:true

let check_fingerprint (protocol, expected) () =
  let result = Core.Controller.run (canonical_config protocol) in
  let actual = Conf.Fingerprint.of_result result in
  if actual <> expected then begin
    Printf.printf "--- canonical form for %s (fingerprint %s) ---\n%s\n" protocol actual
      (Conf.Fingerprint.canonical result);
    Alcotest.fail
      (Printf.sprintf "%s fingerprint changed: pinned %s, got %s — canonical form above" protocol
         expected actual)
  end

(* Depth-4 pins.  Without a workload attached, [pipeline] only reaches the
   chained protocols as the proposal-request width — which the no-workload
   identity hook ignores — so their depth-4 runs must stay byte-identical
   to the depth-1 pins above.  PBFT's slot window genuinely widens, so it
   gets its own pin. *)
let pinned_depth4 =
  [
    ("pbft", "450ea9bc824411db6f9bff0060d570010d9d853be3b66550827cb153ddda8e48");
    ("hotstuff-ns", List.assoc "hotstuff-ns" pinned);
    ("librabft", List.assoc "librabft" pinned);
  ]

let check_fingerprint_depth4 (protocol, expected) () =
  let config =
    Core.Config.make protocol ~n:7 ~seed:42 ~delay:(Net.Delay_model.Constant 100.)
      ~record_trace:true ~pipeline:4
  in
  let result = Core.Controller.run config in
  let actual = Conf.Fingerprint.of_result result in
  if actual <> expected then begin
    Printf.printf "--- canonical form for %s pipeline=4 (fingerprint %s) ---\n%s\n" protocol actual
      (Conf.Fingerprint.canonical result);
    Alcotest.fail
      (Printf.sprintf "%s depth-4 fingerprint changed: pinned %s, got %s — canonical form above"
         protocol expected actual)
  end

let () =
  Alcotest.run "golden"
    [
      ( "fingerprints",
        List.map
          (fun (protocol, expected) ->
            Alcotest.test_case protocol `Quick (check_fingerprint (protocol, expected)))
          pinned );
      ( "fingerprints pipeline=4",
        List.map
          (fun (protocol, expected) ->
            Alcotest.test_case protocol `Quick (check_fingerprint_depth4 (protocol, expected)))
          pinned_depth4 );
    ]
