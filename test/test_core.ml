(* Tests for the simulator core: configuration parsing, the controller's
   event loop and metrics, statistics, the repetition runner, traces, the
   validator, the view tracker and the LoC inventory. *)

module Core = Bftsim_core
module Net = Bftsim_net

let base_config ?(protocol = "pbft") ?(seed = 1) () =
  Core.Config.make protocol ~seed ~delay:(Net.Delay_model.normal ~mu:100. ~sigma:20.)

(* --- Config --- *)

let test_config_defaults () =
  let c = Core.Config.make "pbft" in
  Alcotest.(check int) "n" 16 c.n;
  Alcotest.(check (float 1e-9)) "lambda" 1000. c.lambda_ms;
  Alcotest.(check int) "non-pipelined target" 1 c.decisions_target;
  let h = Core.Config.make "hotstuff-ns" in
  Alcotest.(check int) "pipelined target" 10 h.decisions_target

let test_config_validation () =
  (match Core.Config.make "unknown-protocol" with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "unknown protocol accepted");
  (match Core.Config.make "pbft" ~n:0 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "n = 0 accepted");
  (match Core.Config.make "pbft" ~crashed:[ 99 ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "out-of-range crash accepted");
  match Core.Config.make "pbft" ~lambda_ms:0. with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "lambda = 0 accepted"

let test_config_run_entry_validation () =
  (* Controller.run re-validates, so hand-built records (bypassing make) are
     rejected with a descriptive error instead of silently misbehaving. *)
  let expect_rejected what config =
    match Core.Controller.run config with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.failf "%s accepted" what
  in
  let base = Core.Config.make "pbft" in
  expect_rejected "negative lambda" { base with Core.Config.lambda_ms = -1. };
  expect_rejected "zero decision target" { base with Core.Config.decisions_target = 0 };
  expect_rejected "crash beyond tolerance" { base with Core.Config.crashed = [ 0; 1; 2; 3; 4; 5 ] };
  expect_rejected "duplicate crash" { base with Core.Config.crashed = [ 2; 2 ] };
  expect_rejected "zero event cap" { base with Core.Config.max_events = 0 };
  expect_rejected "non-positive watchdog" { base with Core.Config.watchdog = Some 0. };
  expect_rejected "malformed chaos plan"
    {
      base with
      Core.Config.chaos =
        [ { Bftsim_attack.Fault_schedule.at_ms = 0.; action = Bftsim_attack.Fault_schedule.Crash 99 } ];
    }

let test_config_crash_tolerance_is_model_aware () =
  (* (n-1)/3 crash faults for partially-synchronous protocols, (n-1)/2 for
     synchronous ones: 7 of 16 is legal for sync-hotstuff, not for pbft. *)
  let seven = [ 9; 10; 11; 12; 13; 14; 15 ] in
  ignore (Core.Config.make "sync-hotstuff" ~crashed:seven);
  match Core.Config.make "pbft" ~crashed:seven with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "pbft with 7/16 crashed accepted"

let test_config_inputs () =
  let distinct = Core.Config.make "pbft" ~inputs:Core.Config.Distinct in
  Alcotest.(check string) "distinct" "v3" (Core.Config.input_for distinct 3);
  let same = Core.Config.make "pbft" ~inputs:(Core.Config.Same "x") in
  Alcotest.(check string) "same" "x" (Core.Config.input_for same 3);
  let binary = Core.Config.make "pbft" ~inputs:Core.Config.Random_binary in
  let bit = Core.Config.input_for binary 3 in
  Alcotest.(check bool) "binary" true (bit = "0" || bit = "1");
  Alcotest.(check string) "binary deterministic" bit (Core.Config.input_for binary 3)

let test_config_of_keyvalues () =
  match
    Core.Config.of_keyvalues
      [
        ("protocol", "librabft"); ("n", "7"); ("lambda", "500"); ("delay", "normal:100,10");
        ("seed", "9"); ("attack", "partition:3,0,5000"); ("crashed", "6"); ("target", "2");
        ("inputs", "same:z");
      ]
  with
  | Error e -> Alcotest.failf "parse failed: %s" e
  | Ok c ->
    Alcotest.(check string) "protocol" "librabft" c.protocol;
    Alcotest.(check int) "n" 7 c.n;
    Alcotest.(check (float 1e-9)) "lambda" 500. c.lambda_ms;
    Alcotest.(check int) "seed" 9 c.seed;
    Alcotest.(check int) "target" 2 c.decisions_target;
    Alcotest.(check (list int)) "crashed" [ 6 ] c.crashed;
    (match c.attack with
    | Core.Config.Partition { first_size = 3; heal_ms = 5000.; drop = true; _ } -> ()
    | _ -> Alcotest.fail "partition spec wrong")

let test_config_of_keyvalues_chaos () =
  (match
     Core.Config.of_keyvalues
       [ ("protocol", "pbft"); ("chaos", "crash:3@0;recover:3@5000"); ("watchdog", "5") ]
   with
  | Error e -> Alcotest.failf "parse failed: %s" e
  | Ok c ->
    Alcotest.(check int) "two chaos steps" 2 (List.length c.chaos);
    Alcotest.(check (option (float 1e-9))) "watchdog multiplier" (Some 5.) c.watchdog);
  match Core.Config.of_keyvalues [ ("protocol", "pbft"); ("chaos", "meteor@0") ] with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "bogus chaos spec accepted"

let test_config_of_keyvalues_errors () =
  let expect_error kvs =
    match Core.Config.of_keyvalues kvs with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "accepted %s" (String.concat "," (List.map fst kvs))
  in
  expect_error [ ("n", "16") ] (* missing protocol *);
  expect_error [ ("protocol", "pbft"); ("n", "abc") ];
  expect_error [ ("protocol", "pbft"); ("delay", "bogus") ];
  expect_error [ ("protocol", "pbft"); ("attack", "bogus") ];
  expect_error [ ("protocol", "nope") ]

let contains ~needle haystack =
  let nl = String.length needle and hl = String.length haystack in
  let rec scan i = i + nl <= hl && (String.sub haystack i nl = needle || scan (i + 1)) in
  nl = 0 || scan 0

let test_config_describe () =
  let c = Core.Config.make "pbft" ~attack:(Core.Config.Add_static { f = 2 }) in
  let s = Core.Config.describe c in
  Alcotest.(check bool) "mentions protocol" true (String.length s > 0 && String.sub s 0 4 = "pbft");
  Alcotest.(check bool) "mentions attack" true (contains ~needle:"add-static" s)

(* --- Controller --- *)

let test_controller_determinism () =
  let config = base_config () in
  let a = Core.Controller.run config and b = Core.Controller.run config in
  Alcotest.(check (float 1e-9)) "same time" a.time_ms b.time_ms;
  Alcotest.(check int) "same messages" a.messages_sent b.messages_sent;
  Alcotest.(check int) "same events" a.events_processed b.events_processed;
  Alcotest.(check bool) "same decisions" true (a.decisions = b.decisions)

let test_controller_seed_sensitivity () =
  let a = Core.Controller.run (base_config ~seed:1 ()) in
  let b = Core.Controller.run (base_config ~seed:2 ()) in
  Alcotest.(check bool) "different seeds, different timings" true (a.time_ms <> b.time_ms)

let test_controller_metrics_consistency () =
  let r = Core.Controller.run (base_config ()) in
  Alcotest.(check (float 1e-6)) "per-decision latency = time / target" r.time_ms
    (r.per_decision_latency_ms *. float_of_int r.config.decisions_target);
  Alcotest.(check bool) "bytes positive" true (r.bytes_sent > 0);
  Alcotest.(check bool) "events processed" true (r.events_processed > 0)

let test_controller_crashed_nodes_silent () =
  let config = Core.Config.make "pbft" ~crashed:[ 3; 4 ] ~seed:1 ~delay:(Net.Delay_model.Constant 50.) in
  let r = Core.Controller.run config in
  Alcotest.(check bool) "still live" true (r.outcome = Core.Controller.Reached_target);
  List.iter
    (fun (node, values) ->
      if List.mem node [ 3; 4 ] then
        Alcotest.(check int) (Printf.sprintf "node %d decided nothing" node) 0 (List.length values))
    r.decisions

(* Fail-stop [nodes] at t=0 with no recovery. *)
let crash_forever nodes =
  List.map
    (fun node -> { Bftsim_attack.Fault_schedule.at_ms = 0.; action = Bftsim_attack.Fault_schedule.Crash node })
    nodes

let test_controller_timeout_cap () =
  (* Crash too many nodes to ever make quorum: liveness failure must surface
     as Timed_out (or queue drained for timer-free protocols), not hang.
     Config-level over-crashing is rejected by validation, so deliberate
     over-crashing goes through the chaos plan. *)
  let config =
    Core.Config.make "pbft" ~chaos:(crash_forever [ 0; 1; 2; 3; 4; 5; 6 ]) ~seed:1
      ~max_time_ms:20_000. ~delay:(Net.Delay_model.Constant 50.)
  in
  let r = Core.Controller.run config in
  Alcotest.(check bool) "did not reach target" true (r.outcome <> Core.Controller.Reached_target);
  Alcotest.(check bool) "time capped" true (r.time_ms <= 20_000.)

let test_controller_attacker_override () =
  let dropped_all =
    {
      Bftsim_attack.Attacker.name = "blackhole";
      on_start = (fun _ -> ());
      attack = (fun _ _ -> Bftsim_attack.Attacker.Drop);
      on_time_event = (fun _ _ -> ());
    }
  in
  let config = { (base_config ()) with Core.Config.max_time_ms = 10_000. } in
  let r = Core.Controller.run ~attacker:dropped_all config in
  Alcotest.(check bool) "nothing decided under blackhole" true
    (r.outcome <> Core.Controller.Reached_target);
  Alcotest.(check bool) "drops counted" true (r.messages_dropped > 0)

let test_controller_trace_recording () =
  let config = { (base_config ()) with Core.Config.record_trace = true } in
  let r = Core.Controller.run config in
  match r.trace with
  | None -> Alcotest.fail "trace missing"
  | Some t ->
    Alcotest.(check bool) "trace non-empty" true (Core.Trace.length t > 0);
    let kinds = List.map (fun (e : Core.Trace.entry) -> e.kind) (Core.Trace.entries t) in
    Alcotest.(check bool) "has sends" true (List.mem Core.Trace.Send kinds);
    Alcotest.(check bool) "has delivers" true (List.mem Core.Trace.Deliver kinds);
    Alcotest.(check bool) "has decides" true (List.mem Core.Trace.Decide kinds)

let test_controller_view_sampling () =
  let config = { (base_config ()) with Core.Config.view_sample_ms = Some 100. } in
  let r = Core.Controller.run config in
  Alcotest.(check bool) "samples collected" true (List.length r.view_samples > 0);
  List.iter
    (fun (at, views) ->
      Alcotest.(check bool) "sample in range" true (at <= r.time_ms +. 100.);
      Alcotest.(check int) "one view per node" 16 (Array.length views))
    r.view_samples

(* --- Chaos schedules, watchdog and invariant monitors --- *)

let test_chaos_crash_forever_excluded () =
  (* Nodes the plan crashes and never restarts are not counted toward the
     decision target — the chaos path mirrors config-crashed fail-stop. *)
  let config =
    Core.Config.make "pbft" ~chaos:(crash_forever [ 14; 15 ]) ~seed:1
      ~delay:(Net.Delay_model.Constant 50.)
  in
  let r = Core.Controller.run config in
  Alcotest.(check bool) "still live" true (r.outcome = Core.Controller.Reached_target);
  Alcotest.(check bool) "no invariant violations" true (r.violations = []);
  List.iter
    (fun (node, values) ->
      if List.mem node [ 14; 15 ] then
        Alcotest.(check int) (Printf.sprintf "node %d decided nothing" node) 0 (List.length values))
    r.decisions

let test_watchdog_stalls_overcrashed_run () =
  (* Crash f+1 nodes forever: quorum is unreachable, and without a watchdog
     the run burns simulated time to the 20 s cap.  The watchdog converts
     that Timed_out into Stalled at ~k*lambda, carrying partial metrics. *)
  let make_config watchdog =
    Core.Config.make "pbft" ~chaos:(crash_forever [ 10; 11; 12; 13; 14; 15 ]) ?watchdog ~seed:1
      ~max_time_ms:20_000. ~delay:(Net.Delay_model.Constant 50.)
  in
  let without = Core.Controller.run (make_config None) in
  Alcotest.(check bool) "without watchdog: times out" true
    (without.outcome = Core.Controller.Timed_out);
  let r = Core.Controller.run (make_config (Some 5.)) in
  (match r.outcome with
  | Core.Controller.Stalled { last_progress_ms } ->
    Alcotest.(check (float 1e-9)) "nothing was ever decided" 0. last_progress_ms
  | o -> Alcotest.failf "expected stalled, got %s" (Format.asprintf "%a" Core.Controller.pp_outcome o));
  Alcotest.(check bool) "aborted long before the cap" true (r.time_ms < 10_000.);
  Alcotest.(check bool) "partial metrics preserved" true (r.events_processed > 0)

let test_watchdog_quiet_on_healthy_run () =
  let config = { (base_config ()) with Core.Config.watchdog = Some 5. } in
  let r = Core.Controller.run config in
  Alcotest.(check bool) "healthy run unaffected" true (r.outcome = Core.Controller.Reached_target)

let test_watchdog_waits_for_scheduled_relief () =
  (* The plan recovers the crashed majority at t=30s — far beyond k*lambda.
     The watchdog must hold its fire while steps are pending, then count
     from the last step.  20 s cap < 30 s relief: the run times out rather
     than stalls, proving the watchdog never fired early. *)
  let chaos =
    Bftsim_attack.Fault_schedule.crash_and_recover ~nodes:[ 10; 11; 12; 13; 14; 15 ] ~crash_ms:0.
      ~recover_ms:30_000.
  in
  let config =
    Core.Config.make "pbft" ~chaos ~watchdog:5. ~seed:1 ~max_time_ms:20_000.
      ~delay:(Net.Delay_model.Constant 50.)
  in
  let r = Core.Controller.run config in
  Alcotest.(check bool) "timed out, not stalled" true (r.outcome = Core.Controller.Timed_out)

let test_chaos_determinism () =
  (* Acceptance: a non-trivial fault schedule (crashes, recoveries, a loss
     burst, a delay spike and a GST shift) must leave the run replayable —
     all chaos randomness is drawn from the seeded attacker stream. *)
  let chaos =
    match
      Bftsim_attack.Fault_schedule.of_string
        "crash:14@0;crash:15@0;loss:0.15@0-4000;spike:200@0-4000;recover:14@8000;recover:15@8000;gst:constant:50@8000"
    with
    | Ok plan -> plan
    | Error e -> Alcotest.fail e
  in
  let config =
    Core.Config.make "pbft" ~chaos ~seed:7 ~max_time_ms:60_000.
      ~delay:(Net.Delay_model.normal ~mu:100. ~sigma:20.)
  in
  let report = Core.Validator.check_determinism config in
  Alcotest.(check bool) "decisions match" true report.decisions_match;
  Alcotest.(check (option bool)) "traces match" (Some true) report.trace_match;
  (* Replay must stay exact too: dropped sends hold their position in the
     reconstructed delay table, so sequence numbers line up. *)
  let ground = Core.Controller.run { config with Core.Config.record_trace = true } in
  let replay = Core.Validator.validate_against ~ground_truth:ground config in
  Alcotest.(check bool) "replayed decisions match" true replay.decisions_match;
  Alcotest.(check (option bool)) "replayed trace matches" (Some true) replay.trace_match

let test_chaos_recovery_no_false_agreement () =
  (* A recovered node wakes behind the network: the quorums that decided
     while it was down will never re-form.  Once a later commit quorum
     proves the network moved past it, the replica fetches the decided
     prefix from f+1 peers instead of skipping or stalling — the run must
     still reach its target with no agreement violation. *)
  let chaos =
    Bftsim_attack.Fault_schedule.crash_and_recover ~nodes:[ 14; 15 ] ~crash_ms:0.
      ~recover_ms:15_000.
  in
  let config = Core.Config.make "pbft" ~chaos ~seed:1 ~decisions_target:1 ~max_time_ms:60_000. in
  let r = Core.Controller.run config in
  Alcotest.(check bool) "recovered nodes catch up" true
    (r.outcome = Core.Controller.Reached_target);
  Alcotest.(check bool) "safety holds" true r.safety_ok;
  Alcotest.(check bool) "no violations" true (r.violations = [])

let counter_of (r : Core.Controller.result) name =
  match r.metrics with
  | None -> 0
  | Some m ->
    (match List.assoc_opt name (Bftsim_obs.Metrics.snapshot m) with
    | Some (Bftsim_obs.Metrics.Counter_v c) -> c
    | _ -> 0)

let with_metrics config =
  {
    config with
    Core.Config.telemetry = { Core.Config.default_telemetry with Core.Config.metrics = true };
  }

let test_config_lossy_validation () =
  let rejected f = match f () with exception Invalid_argument _ -> true | _ -> false in
  Alcotest.(check bool) "loss > 1 rejected" true
    (rejected (fun () -> Core.Config.make "pbft" ~loss:(Net.Loss_model.make ~drop:1.5 ())));
  Alcotest.(check bool) "negative dup rejected" true
    (rejected (fun () -> Core.Config.make "pbft" ~loss:(Net.Loss_model.make ~dup:(-0.1) ())));
  Alcotest.(check bool) "backoff < 1 rejected" true
    (rejected (fun () -> Core.Config.make "pbft" ~retrans_backoff:0.5));
  Alcotest.(check bool) "negative retry cap rejected" true
    (rejected (fun () -> Core.Config.make "pbft" ~retrans_max:(-1)));
  Alcotest.(check bool) "negative retrans base rejected" true
    (rejected (fun () -> Core.Config.make "pbft" ~retrans_base_ms:(-5.)));
  Alcotest.(check bool) "negative wal latency rejected" true
    (rejected (fun () -> Core.Config.make "pbft" ~wal_ms:(-1.)));
  Alcotest.(check bool) "zero stall threshold rejected" true
    (rejected (fun () -> Core.Config.make "pbft" ~stall_ms:0.));
  Alcotest.(check bool) "kv path rejects too" true
    (Result.is_error (Core.Config.of_keyvalues [ ("protocol", "pbft"); ("loss", "1.5") ]));
  (* Well-formed lossy configuration is accepted and round-trips. *)
  let c =
    Core.Config.make "pbft"
      ~loss:(Net.Loss_model.make ~drop:0.05 ~dup:0.02 ~reorder_ms:20. ())
      ~reliable:true ~retrans_base_ms:100. ~retrans_max:5 ~wal_ms:2. ~stall_ms:30_000.
  in
  match Core.Config.of_keyvalues (Core.Config.to_keyvalues c) with
  | Ok c' -> Alcotest.(check bool) "kv round-trip" true (c' = c)
  | Error e -> Alcotest.fail e

let test_reliable_channel_end_to_end () =
  (* 20% loss without the reliable channel would starve quorums; with it the
     run reaches its target and the channel's accounting is visible. *)
  let config =
    with_metrics
      (Core.Config.make "hotstuff-ns" ~n:4 ~seed:7 ~decisions_target:10
         ~loss:(Net.Loss_model.make ~drop:0.2 ())
         ~reliable:true)
  in
  let r = Core.Controller.run config in
  Alcotest.(check bool) "reaches target through 20% loss" true
    (r.outcome = Core.Controller.Reached_target);
  Alcotest.(check bool) "safety holds" true r.safety_ok;
  Alcotest.(check bool) "messages were lost" true (counter_of r "net.loss_dropped" > 0);
  Alcotest.(check bool) "channel retransmitted" true (counter_of r "net.retrans" > 0);
  Alcotest.(check bool) "retransmitted duplicates deduped" true
    (counter_of r "net.dup_dropped" > 0)

let test_restart_catchup_end_to_end () =
  (* Crash a replica mid-run, restart it with volatile state lost: WAL
     rehydration plus state transfer must bring it back to the decision
     frontier, observed through the recovery.catchup_ms histogram. *)
  let chaos =
    Bftsim_attack.Fault_schedule.crash_and_restart ~nodes:[ 2 ] ~crash_ms:200. ~restart_ms:700.
  in
  let config =
    with_metrics
      (Core.Config.make "pbft" ~n:7 ~seed:42 ~chaos
         ~loss:(Net.Loss_model.make ~drop:0.05 ~dup:0.02 ())
         ~reliable:true ~wal_ms:0.5 ~stall_ms:60_000.)
  in
  let r = Core.Controller.run config in
  Alcotest.(check bool) "reaches target through the restart" true
    (r.outcome = Core.Controller.Reached_target);
  Alcotest.(check bool) "safety holds" true r.safety_ok;
  Alcotest.(check bool) "no invariant violations" true (r.violations = []);
  let catchup =
    match r.metrics with
    | None -> None
    | Some m ->
      (match List.assoc_opt "recovery.catchup_ms" (Bftsim_obs.Metrics.snapshot m) with
      | Some (Bftsim_obs.Metrics.Histogram_v h) -> Some h
      | _ -> None)
  in
  match catchup with
  | None -> Alcotest.fail "recovery.catchup_ms histogram missing"
  | Some h ->
    Alcotest.(check int) "one restart observed" 1 h.Bftsim_obs.Metrics.s_count;
    Alcotest.(check bool) "catch-up took simulated time" true (h.Bftsim_obs.Metrics.s_sum > 0.)

let test_stall_ms_override () =
  (* The absolute stall threshold arms the liveness watchdog even without
     the [watchdog] multiplier, and wins over it when both are set. *)
  let make ?watchdog ?stall_ms () =
    Core.Config.make "pbft"
      ~chaos:(crash_forever [ 10; 11; 12; 13; 14; 15 ])
      ?watchdog ?stall_ms ~seed:1 ~max_time_ms:20_000. ~delay:(Net.Delay_model.Constant 50.)
  in
  let r = Core.Controller.run (make ~stall_ms:2_000. ()) in
  (match r.outcome with
  | Core.Controller.Stalled _ -> ()
  | o -> Alcotest.failf "expected stalled, got %s" (Format.asprintf "%a" Core.Controller.pp_outcome o));
  Alcotest.(check bool) "aborted near the absolute threshold" true (r.time_ms < 5_000.);
  let a = Core.Controller.run (make ~watchdog:5. ~stall_ms:1_000. ()) in
  let b = Core.Controller.run (make ~watchdog:5. ()) in
  Alcotest.(check bool) "absolute threshold beats the multiplier" true (a.time_ms < b.time_ms)

let test_chaos_validity_monitor_clean () =
  let config =
    Core.Config.make "pbft" ~inputs:(Core.Config.Same "x") ~check_validity:true ~seed:1
      ~delay:(Net.Delay_model.Constant 50.)
  in
  let r = Core.Controller.run config in
  Alcotest.(check bool) "decides" true (r.outcome = Core.Controller.Reached_target);
  Alcotest.(check bool) "validity holds" true (r.violations = [])

let test_invariant_monitors () =
  let m =
    Core.Invariant.create
      ~counted:(fun node -> node <> 9)
      ~crashed_now:(fun ~node ~at_ms:_ -> node = 5)
      ~valid_values:[ "a"; "b" ] ()
  in
  Core.Invariant.on_decide m ~node:0 ~index:0 ~value:"a" ~at_ms:10.;
  Alcotest.(check bool) "clean so far" true (Core.Invariant.ok m);
  Core.Invariant.on_decide m ~node:1 ~index:0 ~value:"b" ~at_ms:20.;
  Core.Invariant.on_decide m ~node:2 ~index:0 ~value:"z" ~at_ms:30.;
  Core.Invariant.on_decide m ~node:5 ~index:0 ~value:"a" ~at_ms:40.;
  Core.Invariant.on_decide m ~node:9 ~index:0 ~value:"zzz" ~at_ms:50.;
  Alcotest.(check bool) "violations flagged" false (Core.Invariant.ok m);
  let monitors = List.map (fun v -> v.Core.Invariant.monitor) (Core.Invariant.violations m) in
  (* node 1 disagrees; node 2 disagrees AND decides an unproposed value;
     node 5 decides while crashed; node 9 is not counted at all. *)
  Alcotest.(check (list string)) "detection order"
    [ "agreement"; "validity"; "agreement"; "crashed-decide" ] monitors;
  (match Core.Invariant.first_violation m ~monitor:"agreement" with
  | Some v -> Alcotest.(check (float 1e-9)) "earliest agreement violation" 20. v.Core.Invariant.at_ms
  | None -> Alcotest.fail "agreement violation not found");
  Alcotest.(check bool) "describe mentions the monitor" true
    (contains ~needle:"crashed-decide"
       (String.concat "\n" (List.map Core.Invariant.describe_violation (Core.Invariant.violations m))))

(* --- Stats --- *)

let test_stats_basic () =
  let s = Core.Stats.of_list [ 1.; 2.; 3.; 4. ] in
  Alcotest.(check (float 1e-9)) "mean" 2.5 s.mean;
  Alcotest.(check (float 1e-9)) "min" 1. s.min;
  Alcotest.(check (float 1e-9)) "max" 4. s.max;
  Alcotest.(check (float 1e-9)) "median" 2.5 s.median;
  Alcotest.(check (float 1e-6)) "stddev" (sqrt 1.25) s.stddev;
  Alcotest.(check int) "count" 4 s.count

let test_stats_single () =
  let s = Core.Stats.of_list [ 7. ] in
  Alcotest.(check (float 1e-9)) "mean" 7. s.mean;
  Alcotest.(check (float 1e-9)) "stddev" 0. s.stddev

let test_stats_percentile () =
  let samples = [ 10.; 20.; 30.; 40.; 50. ] in
  Alcotest.(check (float 1e-9)) "p0" 10. (Core.Stats.percentile samples 0.);
  Alcotest.(check (float 1e-9)) "p50" 30. (Core.Stats.percentile samples 50.);
  Alcotest.(check (float 1e-9)) "p100" 50. (Core.Stats.percentile samples 100.);
  Alcotest.(check (float 1e-9)) "p25 interpolates" 20. (Core.Stats.percentile samples 25.)

let test_stats_errors () =
  (match Core.Stats.of_list [] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "empty accepted");
  match Core.Stats.percentile [ 1. ] 101. with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "out-of-range percentile accepted"

let prop_stats_mean_bounded =
  QCheck.Test.make ~name:"mean lies within [min, max]" ~count:200
    QCheck.(list_of_size Gen.(int_range 1 50) (float_bound_exclusive 1e6))
    (fun xs ->
      let s = Core.Stats.of_list xs in
      s.min <= s.mean +. 1e-9 && s.mean <= s.max +. 1e-9)

(* --- Runner --- *)

let test_runner_aggregates () =
  let summary = Core.Runner.run_many ~reps:5 (base_config ()) in
  Alcotest.(check int) "reps" 5 summary.reps;
  Alcotest.(check int) "results" 5 (List.length summary.results);
  Alcotest.(check int) "no liveness failures" 0 summary.liveness_failures;
  Alcotest.(check int) "no safety violations" 0 summary.safety_violations;
  Alcotest.(check bool) "latency positive" true (summary.latency_ms.mean > 0.)

let test_runner_distinct_seeds () =
  let summary = Core.Runner.run_many ~reps:4 (base_config ()) in
  let times = List.map (fun (r : Core.Controller.result) -> r.time_ms) summary.results in
  Alcotest.(check bool) "seeds vary" true (List.length (List.sort_uniq compare times) > 1)

(* --- Trace & Validator --- *)

let traced_config ?(protocol = "pbft") () =
  { (base_config ~protocol ()) with Core.Config.record_trace = true }

let test_trace_decisions () =
  let r = Core.Controller.run (traced_config ()) in
  let t = Option.get r.trace in
  let from_trace = Core.Trace.decisions t in
  let from_result = List.filter (fun (_, values) -> values <> []) r.decisions in
  Alcotest.(check bool) "trace decisions match controller's" true (from_trace = from_result)

let test_trace_delays_reconstruction () =
  let r = Core.Controller.run (traced_config ()) in
  let t = Option.get r.trace in
  let delays = Core.Trace.delays t in
  Alcotest.(check bool) "some links reconstructed" true (List.length delays > 0);
  List.iter
    (fun ((src, dst, _), ds) ->
      List.iter
        (function
          | Some d when d < 0. ->
            Alcotest.failf "negative reconstructed delay %f on %d->%d" d src dst
          | Some _ | None -> ())
        ds)
    delays

let test_trace_divergence_detection () =
  let a = Core.Trace.create () and b = Core.Trace.create () in
  let entry tag = { Core.Trace.at_ms = 1.; kind = Core.Trace.Send; node = 0; peer = 1; tag; detail = "" } in
  Core.Trace.record a (entry "x");
  Core.Trace.record b (entry "x");
  Alcotest.(check bool) "equal traces" true (Core.Trace.equal a b);
  Core.Trace.record a (entry "y");
  Core.Trace.record b (entry "z");
  Alcotest.(check bool) "diverged" false (Core.Trace.equal a b);
  match Core.Trace.first_divergence a b with
  | Some (1, Some ea, Some eb) ->
    Alcotest.(check string) "left entry" "y" ea.tag;
    Alcotest.(check string) "right entry" "z" eb.tag
  | _ -> Alcotest.fail "divergence not located"

let test_validator_determinism () =
  let report = Core.Validator.check_determinism (base_config ()) in
  Alcotest.(check bool) "decisions match" true report.decisions_match;
  Alcotest.(check (option bool)) "traces match" (Some true) report.trace_match

let test_validator_replay () =
  let ground = Core.Controller.run (traced_config ()) in
  (* Replay with a different sampling seed: delays come from the recorded
     trace, so the decisions must still match the ground truth. *)
  let other_seed = { (traced_config ()) with Core.Config.seed = 999 } in
  let report = Core.Validator.validate_against ~ground_truth:ground other_seed in
  Alcotest.(check bool) "replayed decisions match" true report.decisions_match

let test_validator_detects_difference () =
  let a = Core.Controller.run (base_config ~seed:1 ()) in
  let b = Core.Controller.run (base_config ~protocol:"pbft" ~seed:500 ()) in
  (* Different seeds usually decide the same value here, so compare against a
     crashed-primary run which must decide a different value. *)
  let c =
    Core.Controller.run
      (Core.Config.make "pbft" ~crashed:[ 0 ] ~seed:1 ~delay:(Net.Delay_model.Constant 50.))
  in
  Alcotest.(check bool) "same-protocol same-value runs match" true (Core.Validator.same_decisions a b);
  Alcotest.(check bool) "crashed-primary run differs" false (Core.Validator.same_decisions a c)

(* --- View tracker --- *)

let test_view_tracker_analyze () =
  let samples =
    [
      (0., [| 1; 1; 1 |]); (250., [| 1; 2; 1 |]); (500., [| 2; 2; 2 |]); (750., [| 3; 3; 3 |]);
    ]
  in
  let d = Core.View_tracker.analyze ~sample_ms:250. samples in
  Alcotest.(check int) "max spread" 1 d.max_spread;
  Alcotest.(check (float 1e-9)) "desync time" 250. d.time_desynced_ms;
  Alcotest.(check (option (float 1e-9))) "first desync" (Some 250.) d.first_desync_ms;
  Alcotest.(check (option (float 1e-9))) "resync" (Some 500.) d.resync_ms

let test_view_tracker_crashed_nodes () =
  let d = Core.View_tracker.analyze ~sample_ms:100. [ (0., [| 3; -1; 3 |]) ] in
  Alcotest.(check int) "crashed nodes ignored" 0 d.max_spread

let test_view_tracker_render () =
  let out = Core.View_tracker.render [ (0., [| 1; 2 |]); (250., [| 2; 2 |]) ] in
  Alcotest.(check bool) "renders one row per node" true
    (List.length (String.split_on_char '\n' out) >= 3);
  Alcotest.(check string) "empty samples" "(no samples)" (Core.View_tracker.render [])

(* --- Experiments presets --- *)

let test_experiments_presets_valid () =
  (* Every preset must build a valid config; cheap guard against drift. *)
  ignore (Core.Experiments.fig2_config ~n:8);
  List.iter
    (fun protocol ->
      List.iter
        (fun (_, delay) -> ignore (Core.Experiments.fig3_config ~protocol ~delay ~seed:1))
        Core.Experiments.network_environments)
    Core.Experiments.all_protocols;
  List.iter
    (fun lambda_ms -> ignore (Core.Experiments.fig4_config ~protocol:"pbft" ~lambda_ms ~seed:1))
    Core.Experiments.fig4_lambdas;
  List.iter
    (fun protocol -> ignore (Core.Experiments.fig6_config ~protocol ~seed:1))
    Core.Experiments.fig6_protocols;
  List.iter
    (fun failstop -> ignore (Core.Experiments.fig7_config ~protocol:"pbft" ~failstop ~seed:1))
    Core.Experiments.fig7_failstop_counts;
  List.iter
    (fun f ->
      ignore (Core.Experiments.fig8_static_config ~protocol:"add-v1" ~f ~seed:1);
      ignore (Core.Experiments.fig8_adaptive_config ~protocol:"add-v2" ~f ~seed:1))
    Core.Experiments.fig8_f_values;
  ignore (Core.Experiments.fig9_config ~seed:1)

let test_experiments_fig7_bounds () =
  match Core.Experiments.fig7_config ~protocol:"pbft" ~failstop:6 ~seed:1 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "failstop beyond tolerance accepted"

(* --- LoC inventory --- *)

let test_loc_inventory () =
  match Core.Loc_count.find_root () with
  | None -> () (* sources not present (e.g. installed package); nothing to check *)
  | Some root ->
    let t1 = Core.Loc_count.table1 ~root in
    Alcotest.(check int) "eight protocol rows" 8 (List.length t1);
    List.iter
      (fun (e : Core.Loc_count.entry) ->
        Alcotest.(check bool) (e.label ^ " has code") true (e.loc > 50))
      t1;
    let t2 = Core.Loc_count.table2 ~root in
    Alcotest.(check int) "four attack rows" 4 (List.length t2);
    List.iter
      (fun (e : Core.Loc_count.entry) ->
        Alcotest.(check bool) (e.label ^ " has code") true (e.loc > 10))
      t2

let () =
  let qc = QCheck_alcotest.to_alcotest in
  Alcotest.run "core"
    [
      ( "config",
        [
          Alcotest.test_case "defaults" `Quick test_config_defaults;
          Alcotest.test_case "validation" `Quick test_config_validation;
          Alcotest.test_case "run-entry validation" `Quick test_config_run_entry_validation;
          Alcotest.test_case "model-aware crash tolerance" `Quick
            test_config_crash_tolerance_is_model_aware;
          Alcotest.test_case "inputs" `Quick test_config_inputs;
          Alcotest.test_case "key-value parsing" `Quick test_config_of_keyvalues;
          Alcotest.test_case "key-value chaos" `Quick test_config_of_keyvalues_chaos;
          Alcotest.test_case "key-value errors" `Quick test_config_of_keyvalues_errors;
          Alcotest.test_case "describe" `Quick test_config_describe;
        ] );
      ( "controller",
        [
          Alcotest.test_case "determinism" `Quick test_controller_determinism;
          Alcotest.test_case "seed sensitivity" `Quick test_controller_seed_sensitivity;
          Alcotest.test_case "metric consistency" `Quick test_controller_metrics_consistency;
          Alcotest.test_case "crashed nodes silent" `Quick test_controller_crashed_nodes_silent;
          Alcotest.test_case "liveness cap" `Quick test_controller_timeout_cap;
          Alcotest.test_case "attacker override" `Quick test_controller_attacker_override;
          Alcotest.test_case "trace recording" `Quick test_controller_trace_recording;
          Alcotest.test_case "view sampling" `Quick test_controller_view_sampling;
        ] );
      ( "chaos",
        [
          Alcotest.test_case "crashed-forever excluded from target" `Quick
            test_chaos_crash_forever_excluded;
          Alcotest.test_case "watchdog stalls over-crashed run" `Quick
            test_watchdog_stalls_overcrashed_run;
          Alcotest.test_case "watchdog quiet on healthy run" `Quick
            test_watchdog_quiet_on_healthy_run;
          Alcotest.test_case "watchdog waits for scheduled relief" `Quick
            test_watchdog_waits_for_scheduled_relief;
          Alcotest.test_case "chaos runs replay deterministically" `Quick test_chaos_determinism;
          Alcotest.test_case "recovery causes no false agreement violation" `Quick
            test_chaos_recovery_no_false_agreement;
          Alcotest.test_case "lossy config validation" `Quick test_config_lossy_validation;
          Alcotest.test_case "reliable channel end to end" `Quick
            test_reliable_channel_end_to_end;
          Alcotest.test_case "restart catch-up end to end" `Quick test_restart_catchup_end_to_end;
          Alcotest.test_case "stall_ms override" `Quick test_stall_ms_override;
          Alcotest.test_case "validity monitor clean on unanimous run" `Quick
            test_chaos_validity_monitor_clean;
          Alcotest.test_case "invariant monitors" `Quick test_invariant_monitors;
        ] );
      ( "stats",
        [
          Alcotest.test_case "basic" `Quick test_stats_basic;
          Alcotest.test_case "single sample" `Quick test_stats_single;
          Alcotest.test_case "percentiles" `Quick test_stats_percentile;
          Alcotest.test_case "errors" `Quick test_stats_errors;
          qc prop_stats_mean_bounded;
        ] );
      ( "runner",
        [
          Alcotest.test_case "aggregation" `Quick test_runner_aggregates;
          Alcotest.test_case "distinct seeds" `Quick test_runner_distinct_seeds;
        ] );
      ( "trace+validator",
        [
          Alcotest.test_case "trace decisions" `Quick test_trace_decisions;
          Alcotest.test_case "delay reconstruction" `Quick test_trace_delays_reconstruction;
          Alcotest.test_case "divergence detection" `Quick test_trace_divergence_detection;
          Alcotest.test_case "determinism check" `Quick test_validator_determinism;
          Alcotest.test_case "trace replay" `Quick test_validator_replay;
          Alcotest.test_case "difference detection" `Quick test_validator_detects_difference;
        ] );
      ( "view_tracker",
        [
          Alcotest.test_case "analyze" `Quick test_view_tracker_analyze;
          Alcotest.test_case "crashed nodes" `Quick test_view_tracker_crashed_nodes;
          Alcotest.test_case "render" `Quick test_view_tracker_render;
        ] );
      ( "experiments",
        [
          Alcotest.test_case "presets valid" `Quick test_experiments_presets_valid;
          Alcotest.test_case "fig7 bounds" `Quick test_experiments_fig7_bounds;
        ] );
      ("loc", [ Alcotest.test_case "inventory" `Quick test_loc_inventory ]);
    ]
