(* Tests for the reusable components added around the core reproduction:
   Bracha reliable broadcast (the primitive under async BA) and the CSV
   exporter. *)

module Core = Bftsim_core
module Net = Bftsim_net
module P = Bftsim_protocols

(* --- Test harness protocols built on Rbc --- *)

(* Every node RBC-broadcasts its message; once it has delivered the number
   of broadcasts named in its input, it decides the sorted concatenation. *)
module Rbc_flood = struct
  let name = "rbc-flood-test"

  let model = P.Protocol_intf.Asynchronous

  let pipelined = false

  type node = {
    rbc : P.Rbc.t;
    mutable received : string list;
    mutable decided : bool;
    expected : int;
  }

  let create ctx =
    {
      rbc = P.Rbc.create ();
      received = [];
      decided = false;
      expected = int_of_string ctx.P.Context.input;
    }

  let on_start t ctx =
    P.Rbc.broadcast t.rbc ctx ~tag:"flood" ~value:(Printf.sprintf "m%d" ctx.P.Context.node_id)

  let on_message t ctx msg =
    match P.Rbc.handle t.rbc ctx msg with
    | Some (_, _, value) ->
      t.received <- value :: t.received;
      if List.length t.received >= t.expected && not t.decided then begin
        t.decided <- true;
        ctx.P.Context.decide (String.concat "+" (List.sort compare t.received))
      end
    | None -> ()

  let on_timer _ _ _ = ()

  let on_restart = on_start

  let view t = List.length t.received
end

(* Decides the value delivered for origin 0's broadcast — the totality
   probe used by the equivocation test. *)
module Rbc_origin = struct
  let name = "rbc-origin-test"

  let model = P.Protocol_intf.Asynchronous

  let pipelined = false

  type node = { rbc : P.Rbc.t; mutable decided : bool }

  let create _ctx = { rbc = P.Rbc.create (); decided = false }

  let on_start t ctx =
    P.Rbc.broadcast t.rbc ctx ~tag:"probe" ~value:(Printf.sprintf "m%d" ctx.P.Context.node_id)

  let on_message t ctx msg =
    match P.Rbc.handle t.rbc ctx msg with
    | Some (0, _, value) when not t.decided ->
      t.decided <- true;
      ctx.P.Context.decide value
    | _ -> ()

  let on_timer _ _ _ = ()

  let on_restart = on_start

  let view t = if t.decided then 1 else 0
end

let () =
  P.Registry.register (module Rbc_flood);
  P.Registry.register (module Rbc_origin)

let run ?(protocol = "rbc-flood-test") ?(n = 16) ?(seed = 5) ?crashed ?attacker ~expected () =
  let config =
    Core.Config.make protocol ~n ~seed ?crashed
      ~delay:(Net.Delay_model.normal ~mu:100. ~sigma:20.)
      ~inputs:(Core.Config.Same (string_of_int expected))
      ~max_time_ms:60_000.
  in
  Core.Controller.run ?attacker config

let test_rbc_all_deliver () =
  let r = run ~expected:16 () in
  Alcotest.(check bool) "all decide" true (r.outcome = Core.Controller.Reached_target);
  Alcotest.(check bool) "agreement" true r.safety_ok;
  (* The decided set is every node's message. *)
  let _, values = List.hd (List.filter (fun (_, v) -> v <> []) r.decisions) in
  let expected = String.concat "+" (List.sort compare (List.init 16 (Printf.sprintf "m%d"))) in
  Alcotest.(check string) "full set delivered" expected (List.hd values)

let test_rbc_validity_under_crashes () =
  (* f = 5 crashed origins: the 11 live broadcasts must still deliver
     everywhere (11 = 2f+1 echo quorum is exactly reachable). *)
  let r = run ~crashed:[ 11; 12; 13; 14; 15 ] ~expected:11 () in
  Alcotest.(check bool) "live nodes decide" true (r.outcome = Core.Controller.Reached_target);
  Alcotest.(check bool) "same delivered set" true r.safety_ok

let test_rbc_totality_under_equivocation () =
  (* The attacker splits origin 0's init: odd receivers get a forged value.
     Neither value can reach the 2f+1 echo quorum, so no honest node may
     deliver origin 0's broadcast at all — and in no case may two nodes
     deliver different values (the controller's agreement check). *)
  let forge (env : Bftsim_attack.Attacker.env) (msg : Net.Message.t) =
    match msg.Net.Message.payload with
    | P.Rbc.Rbc_init { origin = 0; tag; value } when msg.Net.Message.dst mod 2 = 1 ->
      env.inject ~src:0 ~dst:msg.Net.Message.dst ~delay_ms:msg.Net.Message.delay_ms
        ~tag:"rbc-init*" ~size:msg.Net.Message.size
        (P.Rbc.Rbc_init { origin = 0; tag; value = value ^ "#forged" });
      Bftsim_attack.Attacker.Drop
    | _ -> Bftsim_attack.Attacker.Deliver
  in
  let attacker =
    {
      Bftsim_attack.Attacker.name = "rbc-equivocator";
      on_start = (fun _ -> ());
      attack = forge;
      on_time_event = (fun _ _ -> ());
    }
  in
  let r = run ~protocol:"rbc-origin-test" ~attacker ~expected:1 () in
  Alcotest.(check bool) "totality: no conflicting deliveries" true r.safety_ok;
  Alcotest.(check bool) "split init cannot be delivered" true
    (r.outcome <> Core.Controller.Reached_target)

let test_rbc_spoofed_init_ignored () =
  (* An init claiming origin 0 but sent by node 3 must not trigger echoes:
     drive the handler directly. *)
  let delivered = ref [] in
  let sent = ref 0 in
  let ctx node_id =
    {
      P.Context.node_id;
      n = 4;
      f = 1;
      lambda_ms = 1000.;
      seed = 1;
      input = "";
      naive_reset = P.Context.Reset_on_commit;
      rng = Bftsim_sim.Rng.create 1;
      now = (fun () -> Bftsim_sim.Time.zero);
      send_raw = (fun ~dst:_ ~tag:_ ~size:_ _ -> incr sent);
      broadcast_raw = (fun ~include_self:_ ~tag:_ ~size:_ _ -> sent := !sent + 4);
      set_timer = (fun ~delay_ms:_ ~tag:_ _ -> 0);
      cancel_timer = ignore;
      decide = (fun v -> delivered := v :: !delivered);
      probe = (fun ~tag:_ ~detail:_ -> ());
      leader_schedule = None;
      request_proposal = (fun ~slot:_ ~width:_ ~default k -> ignore (k default : bool));
      pipeline_depth = 1;
      durable = false;
      persist = (fun ~key:_ _ -> ());
      recall = (fun ~key:_ -> None);
      on_caught_up = ignore;
    }
  in
  let t = P.Rbc.create () in
  let spoofed =
    Net.Message.make ~id:1 ~src:3 ~dst:1 ~sent_at:Bftsim_sim.Time.zero
      (P.Rbc.Rbc_init { origin = 0; tag = "x"; value = "evil" })
  in
  Alcotest.(check bool) "no delivery" true (P.Rbc.handle t (ctx 1) spoofed = None);
  Alcotest.(check int) "no echo sent" 0 !sent;
  let genuine =
    Net.Message.make ~id:2 ~src:0 ~dst:1 ~sent_at:Bftsim_sim.Time.zero
      (P.Rbc.Rbc_init { origin = 0; tag = "x"; value = "good" })
  in
  ignore (P.Rbc.handle t (ctx 1) genuine);
  Alcotest.(check int) "echo broadcast to all 4" 4 !sent

let test_rbc_delivery_thresholds () =
  (* Drive one node's handler: 2f+1 echoes trigger a ready, 2f+1 readies
     deliver exactly once. *)
  let sends = ref [] in
  let ctx =
    {
      P.Context.node_id = 0;
      n = 4;
      f = 1;
      lambda_ms = 1000.;
      seed = 1;
      input = "";
      naive_reset = P.Context.Reset_on_commit;
      rng = Bftsim_sim.Rng.create 1;
      now = (fun () -> Bftsim_sim.Time.zero);
      send_raw = (fun ~dst:_ ~tag ~size:_ _ -> sends := tag :: !sends);
      broadcast_raw = (fun ~include_self:_ ~tag ~size:_ _ -> sends := tag :: !sends);
      set_timer = (fun ~delay_ms:_ ~tag:_ _ -> 0);
      cancel_timer = ignore;
      decide = ignore;
      probe = (fun ~tag:_ ~detail:_ -> ());
      leader_schedule = None;
      request_proposal = (fun ~slot:_ ~width:_ ~default k -> ignore (k default : bool));
      pipeline_depth = 1;
      durable = false;
      persist = (fun ~key:_ _ -> ());
      recall = (fun ~key:_ -> None);
      on_caught_up = ignore;
    }
  in
  let t = P.Rbc.create () in
  let msg src payload = Net.Message.make ~id:src ~src ~dst:0 ~sent_at:Bftsim_sim.Time.zero payload in
  let echo src = P.Rbc.handle t ctx (msg src (P.Rbc.Rbc_echo { origin = 2; tag = "t"; value = "v" })) in
  let ready src =
    P.Rbc.handle t ctx (msg src (P.Rbc.Rbc_ready { origin = 2; tag = "t"; value = "v" }))
  in
  Alcotest.(check bool) "2 echoes: nothing" true (echo 1 = None && echo 2 = None);
  Alcotest.(check bool) "3rd echo: still no delivery" true (echo 3 = None);
  Alcotest.(check bool) "ready sent after echo quorum" true
    (List.mem "rbc-ready" !sends);
  Alcotest.(check bool) "2 readies: no delivery yet" true (ready 1 = None && ready 2 = None);
  (match ready 3 with
  | Some (2, "t", "v") -> ()
  | _ -> Alcotest.fail "3rd ready must deliver");
  Alcotest.(check bool) "no double delivery" true (ready 4 = None);
  Alcotest.(check (option string)) "delivered recorded" (Some "v")
    (P.Rbc.delivered t ~origin:2 ~tag:"t");
  Alcotest.(check int) "delivered count" 1 (P.Rbc.delivered_count t)

(* --- CSV export --- *)

let test_csv_escape () =
  Alcotest.(check string) "plain untouched" "abc" (Core.Csv_export.escape "abc");
  Alcotest.(check string) "comma quoted" "\"a,b\"" (Core.Csv_export.escape "a,b");
  Alcotest.(check string) "quote doubled" "\"a\"\"b\"" (Core.Csv_export.escape "a\"b");
  Alcotest.(check string) "newline quoted" "\"a\nb\"" (Core.Csv_export.escape "a\nb")

let field_count line =
  (* Count top-level commas (none of our test rows contain quoted commas). *)
  List.length (String.split_on_char ',' line)

let test_csv_rows_match_headers () =
  let config = Core.Config.make "pbft" ~seed:1 ~delay:(Net.Delay_model.Constant 50.) in
  let r = Core.Controller.run config in
  Alcotest.(check int) "result columns" (field_count Core.Csv_export.result_header)
    (field_count (Core.Csv_export.result_row r));
  let s = Core.Runner.run_many ~reps:3 config in
  Alcotest.(check int) "summary columns" (field_count Core.Csv_export.summary_header)
    (field_count (Core.Csv_export.summary_row s))

let test_csv_content () =
  let config = Core.Config.make "pbft" ~n:7 ~seed:9 ~delay:(Net.Delay_model.Constant 50.) in
  let r = Core.Controller.run config in
  let line = Core.Csv_export.result_row r in
  let fields = String.split_on_char ',' line in
  Alcotest.(check string) "protocol" "pbft" (List.nth fields 0);
  Alcotest.(check string) "n" "7" (List.nth fields 1);
  Alcotest.(check string) "seed" "9" (List.nth fields 2);
  Alcotest.(check string) "outcome" "reached-target" (List.nth fields 7);
  Alcotest.(check string) "safety" "true" (List.nth fields 16)

let test_csv_write_file () =
  let path = Filename.temp_file "bftsim" ".csv" in
  Core.Csv_export.write_file ~path ~header:"a,b" ~rows:[ "1,2"; "3,4" ];
  let ic = open_in path in
  let lines = List.init 3 (fun _ -> input_line ic) in
  close_in ic;
  Sys.remove path;
  Alcotest.(check (list string)) "file contents" [ "a,b"; "1,2"; "3,4" ] lines

let () =
  Alcotest.run "components"
    [
      ( "rbc",
        [
          Alcotest.test_case "all-to-all delivery" `Quick test_rbc_all_deliver;
          Alcotest.test_case "validity under crashes" `Quick test_rbc_validity_under_crashes;
          Alcotest.test_case "totality under equivocation" `Quick
            test_rbc_totality_under_equivocation;
          Alcotest.test_case "spoofed init ignored" `Quick test_rbc_spoofed_init_ignored;
          Alcotest.test_case "delivery thresholds" `Quick test_rbc_delivery_thresholds;
        ] );
      ( "csv",
        [
          Alcotest.test_case "escaping" `Quick test_csv_escape;
          Alcotest.test_case "rows match headers" `Quick test_csv_rows_match_headers;
          Alcotest.test_case "content" `Quick test_csv_content;
          Alcotest.test_case "write_file" `Quick test_csv_write_file;
        ] );
    ]
