(* Tests for the lib/obs telemetry subsystem: the JSON codec, the metrics
   registry (bucket boundaries, quantiles, deterministic merge), the ring
   tracer, the exporters (Chrome output parsed back with the codec), and
   the end-to-end wiring: telemetry must not perturb simulation results,
   and merged registries must be identical at any domain-pool size. *)

module Obs = Bftsim_obs
module Core = Bftsim_core
module Net = Bftsim_net

(* --- Json --- *)

let parse s =
  match Obs.Json.of_string s with
  | Ok v -> v
  | Error e -> Alcotest.failf "parse failure: %s" e

let member name j =
  match Obs.Json.member name j with
  | Some v -> v
  | None -> Alcotest.failf "missing field %s" name

let number j =
  match Obs.Json.to_number j with Some f -> f | None -> Alcotest.fail "expected number"

let test_json_roundtrip () =
  let doc =
    Obs.Json.Assoc
      [
        ("name", Obs.Json.String "a \"quoted\"\nstring \x01 with \xe2\x9c\x93 unicode");
        ("int", Obs.Json.Int (-42));
        ("float", Obs.Json.Float 1.5);
        ("tiny", Obs.Json.Float 1e-9);
        ("null", Obs.Json.Null);
        ("flags", Obs.Json.List [ Obs.Json.Bool true; Obs.Json.Bool false ]);
        ("empty_obj", Obs.Json.Assoc []);
        ("empty_arr", Obs.Json.List []);
      ]
  in
  let reparsed = parse (Obs.Json.to_string doc) in
  Alcotest.(check bool) "roundtrip" true (reparsed = doc)

let test_json_parse_escapes () =
  (match parse {|"aA\n\t\"\\é😀"|} with
  | Obs.Json.String s -> Alcotest.(check string) "escapes" "aA\n\t\"\\\xc3\xa9\xf0\x9f\x98\x80" s
  | _ -> Alcotest.fail "expected string");
  (match parse "[1, 2.5, -3e2, true, null]" with
  | Obs.Json.List [ Obs.Json.Int 1; Obs.Json.Float 2.5; Obs.Json.Float -300.; Obs.Json.Bool true; Obs.Json.Null ]
    -> ()
  | _ -> Alcotest.fail "number forms");
  match Obs.Json.of_string "{\"a\": 1} trailing" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "trailing garbage accepted"

let test_json_float_fidelity () =
  let check_float f =
    match parse (Obs.Json.to_string (Obs.Json.Float f)) with
    | Obs.Json.Float g -> Alcotest.(check (float 0.)) (string_of_float f) f g
    | Obs.Json.Int i -> Alcotest.(check (float 0.)) (string_of_float f) f (float_of_int i)
    | _ -> Alcotest.fail "expected number"
  in
  List.iter check_float [ 0.1; 1. /. 3.; 1e300; -2.5e-7; 1234567.0 ];
  (* Non-finite floats are not representable in JSON: emitted as null. *)
  Alcotest.(check string) "nan" "null" (Obs.Json.to_string (Obs.Json.Float Float.nan))

(* --- Metrics: histogram bucket boundaries --- *)

let test_histogram_buckets () =
  let reg = Obs.Metrics.create () in
  let h = Obs.Metrics.histogram ~buckets:[| 1.; 10.; 100. |] reg "h" in
  (* Bucket i holds v <= bounds.(i): 0.5 and 1.0 land in bucket 0 (<=1),
     5 in bucket 1 (<=10), 10 in bucket 1 (boundary is inclusive),
     50 in bucket 2 (<=100), 1000 overflows. *)
  List.iter (Obs.Metrics.observe_h h) [ 0.5; 1.0; 5.; 10.; 50.; 1000. ];
  match Obs.Metrics.snapshot reg with
  | [ ("h", Obs.Metrics.Histogram_v s) ] ->
    Alcotest.(check (array (float 0.))) "bounds" [| 1.; 10.; 100. |] s.Obs.Metrics.s_bounds;
    Alcotest.(check (array int)) "counts" [| 2; 2; 1; 1 |] s.Obs.Metrics.s_counts;
    Alcotest.(check int) "count" 6 s.Obs.Metrics.s_count;
    Alcotest.(check (float 1e-9)) "sum" 1066.5 s.Obs.Metrics.s_sum;
    Alcotest.(check (float 0.)) "min" 0.5 s.Obs.Metrics.s_min;
    Alcotest.(check (float 0.)) "max" 1000. s.Obs.Metrics.s_max
  | _ -> Alcotest.fail "expected one histogram"

let test_histogram_quantiles () =
  let reg = Obs.Metrics.create () in
  let h = Obs.Metrics.histogram ~buckets:[| 10.; 20.; 30. |] reg "h" in
  for v = 1 to 30 do
    Obs.Metrics.observe_h h (float_of_int v)
  done;
  match Obs.Metrics.snapshot reg with
  | [ ("h", Obs.Metrics.Histogram_v s) ] ->
    let q p = Obs.Metrics.quantile_of_snapshot s p in
    (* Uniform 1..30: the p50 estimate sits near 15, clamped within the
       observed range; p0/p100 hit the exact extremes. *)
    Alcotest.(check (float 0.)) "p0" 1. (q 0.);
    Alcotest.(check (float 0.)) "p100" 30. (q 100.);
    let p50 = q 50. in
    Alcotest.(check bool) "p50 in [10, 20]" true (p50 >= 10. && p50 <= 20.);
    let p95 = q 95. in
    Alcotest.(check bool) "p95 in [20, 30]" true (p95 >= 20. && p95 <= 30.);
    Alcotest.(check bool) "monotone" true (q 25. <= q 50. && q 50. <= q 75.)
  | _ -> Alcotest.fail "expected one histogram"

let test_histogram_validation () =
  let reg = Obs.Metrics.create () in
  (match Obs.Metrics.histogram ~buckets:[||] reg "bad" with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "empty layout accepted");
  (match Obs.Metrics.histogram ~buckets:[| 5.; 5. |] reg "bad2" with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "non-increasing layout accepted");
  ignore (Obs.Metrics.counter reg "c");
  match Obs.Metrics.histogram reg "c" with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "type clash accepted"

(* --- Metrics: merge --- *)

let test_merge_semantics () =
  let a = Obs.Metrics.create () in
  let b = Obs.Metrics.create () in
  Obs.Metrics.incr ~by:3 a "c";
  Obs.Metrics.incr ~by:4 b "c";
  Obs.Metrics.incr b "only_b";
  Obs.Metrics.set_gauge a "g" 2.;
  Obs.Metrics.set_gauge b "g" 5.;
  Obs.Metrics.set_gauge a "g0" 0.;
  Obs.Metrics.observe ~buckets:[| 10.; 20. |] a "h" 5.;
  Obs.Metrics.observe ~buckets:[| 10.; 20. |] b "h" 15.;
  let m = Obs.Metrics.merge [ a; b ] in
  let find name = List.assoc name (Obs.Metrics.snapshot m) in
  (match find "c" with
  | Obs.Metrics.Counter_v 7 -> ()
  | _ -> Alcotest.fail "counters must sum");
  (match find "only_b" with
  | Obs.Metrics.Counter_v 1 -> ()
  | _ -> Alcotest.fail "missing-on-one-side counter");
  (match find "g" with
  | Obs.Metrics.Gauge_v 5. -> ()
  | _ -> Alcotest.fail "gauges must keep the max");
  (match find "g0" with
  | Obs.Metrics.Gauge_v 0. -> ()
  | _ -> Alcotest.fail "zero gauge must survive the merge");
  (match find "h" with
  | Obs.Metrics.Histogram_v s ->
    Alcotest.(check (array int)) "bucket-wise add" [| 1; 1; 0 |] s.Obs.Metrics.s_counts
  | _ -> Alcotest.fail "histogram expected");
  (* Mismatched layouts must be rejected, not silently mangled. *)
  let c = Obs.Metrics.create () in
  Obs.Metrics.observe ~buckets:[| 1.; 2. |] c "h" 1.;
  match Obs.Metrics.merge [ a; c ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "layout mismatch accepted"

(* qcheck: merging one registry per chunk gives the same result however the
   observations are chunked — the property that makes domain-pool merges
   deterministic (each run's registry is chunk-order independent). *)
let test_merge_chunking_qcheck =
  (* Observations are half-integers so per-chunk sums are exact and the
     grouping of float additions cannot matter. *)
  let gen = QCheck.(list (pair (int_bound 4) (map (fun i -> float_of_int i *. 0.5) (int_bound 200)))) in
  QCheck.Test.make ~name:"merge independent of chunking" ~count:100 gen (fun obs ->
      let record reg (k, v) =
        Obs.Metrics.incr reg (Printf.sprintf "c%d" k);
        Obs.Metrics.observe ~buckets:[| 10.; 50. |] reg "h" v
      in
      let whole = Obs.Metrics.create () in
      List.iter (record whole) obs;
      let rec chunk k = function
        | [] -> []
        | l ->
          let take = 1 + (k mod 3) in
          let rec split i = function
            | [] -> ([], [])
            | x :: tl when i < take ->
              let a, b = split (i + 1) tl in
              (x :: a, b)
            | l -> ([], l)
          in
          let head, rest = split 0 l in
          head :: chunk (k + 1) rest
      in
      let regs =
        List.map
          (fun part ->
            let r = Obs.Metrics.create () in
            List.iter (record r) part;
            r)
          (chunk 0 obs)
      in
      match regs with
      | [] -> true
      | _ -> Obs.Metrics.equal (Obs.Metrics.merge regs) whole)

(* --- Tracer ring buffer --- *)

let test_ring_overflow_keeps_newest () =
  let tr = Obs.Tracer.create ~capacity:4 () in
  for i = 1 to 10 do
    Obs.Tracer.instant tr ~name:(string_of_int i) ~cat:"t" ~node:0 ~ts_us:(float_of_int i) ()
  done;
  Alcotest.(check int) "length capped" 4 (Obs.Tracer.length tr);
  Alcotest.(check int) "recorded" 10 (Obs.Tracer.recorded tr);
  Alcotest.(check int) "dropped" 6 (Obs.Tracer.dropped tr);
  let names = List.map (fun e -> e.Obs.Tracer.name) (Obs.Tracer.entries tr) in
  Alcotest.(check (list string)) "newest kept, oldest first" [ "7"; "8"; "9"; "10" ] names;
  match Obs.Tracer.create ~capacity:0 () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "capacity 0 accepted"

let test_tracer_entry_fields () =
  let tr = Obs.Tracer.create ~capacity:8 () in
  Obs.Tracer.span tr ~name:"s" ~cat:"net" ~node:3 ~ts_us:100. ~dur_us:50.
    ~args:[ ("k", Obs.Tracer.Int 1) ]
    ();
  match Obs.Tracer.entries tr with
  | [ e ] ->
    Alcotest.(check string) "name" "s" e.Obs.Tracer.name;
    Alcotest.(check int) "node" 3 e.Obs.Tracer.node;
    Alcotest.(check bool) "phase" true (e.Obs.Tracer.phase = Obs.Tracer.Complete);
    Alcotest.(check (float 0.)) "ts" 100. e.Obs.Tracer.ts_us;
    Alcotest.(check (float 0.)) "dur" 50. e.Obs.Tracer.dur_us;
    Alcotest.(check bool) "wall clock recorded" true (e.Obs.Tracer.wall_us >= 0.)
  | _ -> Alcotest.fail "expected one entry"

(* --- Exporter --- *)

let test_chrome_export_parses_back () =
  let tr = Obs.Tracer.create ~capacity:16 () in
  Obs.Tracer.span tr ~name:"msg \"x\"" ~cat:"net" ~node:1 ~ts_us:10. ~dur_us:5.
    ~args:[ ("src", Obs.Tracer.Int 0); ("w", Obs.Tracer.Float 1.25) ]
    ();
  Obs.Tracer.instant tr ~name:"decide" ~cat:"protocol" ~node:2 ~ts_us:20.
    ~args:[ ("value", Obs.Tracer.Str "v\n1") ]
    ();
  let doc = parse (Obs.Json.to_string (Obs.Exporter.chrome_json tr)) in
  let events =
    match Obs.Json.to_list (member "traceEvents" doc) with
    | Some l -> l
    | None -> Alcotest.fail "traceEvents is not an array"
  in
  Alcotest.(check int) "two events" 2 (List.length events);
  (match events with
  | [ span; instant ] ->
    Alcotest.(check (option string)) "ph X" (Some "X")
      (Obs.Json.to_string_opt (member "ph" span));
    Alcotest.(check (option string)) "name escaped+restored" (Some "msg \"x\"")
      (Obs.Json.to_string_opt (member "name" span));
    Alcotest.(check (float 0.)) "ts" 10. (number (member "ts" span));
    Alcotest.(check (float 0.)) "dur" 5. (number (member "dur" span));
    Alcotest.(check (float 0.)) "tid = node" 1. (number (member "tid" span));
    Alcotest.(check (option string)) "ph i" (Some "i")
      (Obs.Json.to_string_opt (member "ph" instant));
    let args = member "args" instant in
    Alcotest.(check (option string)) "string arg survives newline" (Some "v\n1")
      (Obs.Json.to_string_opt (member "value" args))
  | _ -> assert false);
  match member "otherData" doc with
  | Obs.Json.Assoc _ -> ()
  | _ -> Alcotest.fail "otherData missing"

let test_jsonl_export () =
  let tr = Obs.Tracer.create ~capacity:4 () in
  Obs.Tracer.instant tr ~name:"a" ~cat:"t" ~node:0 ~ts_us:1. ();
  Obs.Tracer.instant tr ~name:"b" ~cat:"t" ~node:1 ~ts_us:2. ();
  let path = Filename.temp_file "bftsim_obs" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Obs.Exporter.write_file ~path ~format:Obs.Exporter.Jsonl tr;
      let ic = open_in path in
      let lines = ref [] in
      (try
         while true do
           lines := input_line ic :: !lines
         done
       with End_of_file -> ());
      close_in ic;
      let lines = List.rev !lines in
      Alcotest.(check int) "one line per event" 2 (List.length lines);
      List.iter
        (fun line ->
          match parse line with
          | Obs.Json.Assoc _ -> ()
          | _ -> Alcotest.fail "line is not an object")
        lines)

(* --- Probe (ambient sink) --- *)

let test_probe_ambient () =
  (* Without a sink every helper is a no-op. *)
  Obs.Probe.clear ();
  Obs.Probe.incr "c";
  Obs.Probe.instant ~name:"x" ~cat:"t" ~node:0 ~ts_us:0. ();
  let reg = Obs.Metrics.create () in
  let tr = Obs.Tracer.create ~capacity:4 () in
  Obs.Probe.set ~metrics:reg ~tracer:tr ();
  Obs.Probe.incr ~by:2 "c";
  Obs.Probe.observe ~buckets:[| 10. |] "h" 3.;
  Obs.Probe.instant ~name:"x" ~cat:"t" ~node:0 ~ts_us:0. ();
  Obs.Probe.clear ();
  Obs.Probe.incr "c";
  (match List.assoc "c" (Obs.Metrics.snapshot reg) with
  | Obs.Metrics.Counter_v 2 -> ()
  | _ -> Alcotest.fail "ambient counter");
  Alcotest.(check int) "ambient instant" 1 (Obs.Tracer.length tr)

(* --- End-to-end: controller + runner --- *)

let base_config ?(telemetry = Core.Config.default_telemetry) () =
  {
    (Core.Config.make "pbft" ~n:7 ~seed:5
       ~delay:(Net.Delay_model.normal ~mu:100. ~sigma:20.))
    with
    Core.Config.telemetry;
  }

let fingerprint (r : Core.Controller.result) =
  (r.time_ms, r.messages_sent, r.bytes_sent, r.events_processed, r.decisions, r.final_views)

let test_telemetry_does_not_perturb () =
  let plain = Core.Controller.run (base_config ()) in
  let full =
    Core.Controller.run
      (base_config
         ~telemetry:{ Core.Config.metrics = true; tracing = true; trace_capacity = 1024 }
         ())
  in
  Alcotest.(check bool) "same simulation" true (fingerprint plain = fingerprint full);
  Alcotest.(check bool) "plain run has no registry" true (plain.Core.Controller.metrics = None);
  Alcotest.(check bool) "plain run has no spans" true (plain.Core.Controller.spans = None);
  let reg = Option.get full.Core.Controller.metrics in
  let count name =
    match List.assoc_opt name (Obs.Metrics.snapshot reg) with
    | Some (Obs.Metrics.Counter_v c) -> c
    | _ -> Alcotest.failf "counter %s missing" name
  in
  Alcotest.(check int) "net.sent matches result" full.Core.Controller.messages_sent
    (count "net.sent");
  Alcotest.(check int) "net.bytes matches result" full.Core.Controller.bytes_sent
    (count "net.bytes");
  Alcotest.(check int) "sim.events matches result" full.Core.Controller.events_processed
    (count "sim.events");
  Alcotest.(check bool) "decisions counted" true (count "protocol.decisions" >= 7);
  let spans = Option.get full.Core.Controller.spans in
  Alcotest.(check bool) "trace non-empty" true (Obs.Tracer.length spans > 0);
  let cats =
    List.sort_uniq compare (List.map (fun e -> e.Obs.Tracer.cat) (Obs.Tracer.entries spans))
  in
  (* No "timer" here: a clean fast run can end with every timer still
     pending (spans are emitted at fire/cancel-consume time). *)
  List.iter
    (fun cat -> Alcotest.(check bool) (cat ^ " events present") true (List.mem cat cats))
    [ "net"; "sim"; "protocol" ]

let test_merged_metrics_jobs_independent () =
  let config =
    base_config
      ~telemetry:{ Core.Config.metrics = true; tracing = false; trace_capacity = 1024 }
      ()
  in
  let s1 = Core.Runner.run_many ~reps:6 ~jobs:1 config in
  let s4 = Core.Runner.run_many ~reps:6 ~jobs:4 config in
  let m1 = Option.get s1.Core.Runner.metrics in
  let m4 = Option.get s4.Core.Runner.metrics in
  Alcotest.(check bool) "merged registries identical at jobs 1 vs 4" true
    (Obs.Metrics.equal m1 m4);
  (* And the rendering — what the CI job diffs — is byte-identical too. *)
  Alcotest.(check string) "rendered registries identical"
    (Format.asprintf "%a" Obs.Metrics.pp m1)
    (Format.asprintf "%a" Obs.Metrics.pp m4)

let test_simlog_mirror () =
  let tr = Obs.Tracer.create ~capacity:16 () in
  Bftsim_sim.Simlog.set_mirror
    (Some
       (fun ~level s ->
         let name = match level with Logs.Error -> "error" | _ -> "warning" in
         Obs.Tracer.instant tr ~name ~cat:"log" ~node:(-1) ~ts_us:0.
           ~args:[ ("msg", Obs.Tracer.Str s) ]
           ()));
  Bftsim_sim.Simlog.warn "mirrored %d" 1;
  Bftsim_sim.Simlog.info "not mirrored";
  Bftsim_sim.Simlog.set_mirror None;
  Bftsim_sim.Simlog.warn "after removal";
  let entries = Obs.Tracer.entries tr in
  Alcotest.(check int) "only warn+ mirrored, only while installed" 1 (List.length entries);
  match entries with
  | [ e ] ->
    Alcotest.(check string) "cat" "log" e.Obs.Tracer.cat;
    (match List.assoc "msg" e.Obs.Tracer.args with
    | Obs.Tracer.Str s -> Alcotest.(check string) "formatted" "mirrored 1" s
    | _ -> Alcotest.fail "msg arg")
  | _ -> assert false

let () =
  Alcotest.run "obs"
    [
      ( "json",
        [
          Alcotest.test_case "roundtrip" `Quick test_json_roundtrip;
          Alcotest.test_case "escapes and numbers" `Quick test_json_parse_escapes;
          Alcotest.test_case "float fidelity" `Quick test_json_float_fidelity;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "histogram bucket boundaries" `Quick test_histogram_buckets;
          Alcotest.test_case "histogram quantiles" `Quick test_histogram_quantiles;
          Alcotest.test_case "histogram validation" `Quick test_histogram_validation;
          Alcotest.test_case "merge semantics" `Quick test_merge_semantics;
          QCheck_alcotest.to_alcotest test_merge_chunking_qcheck;
        ] );
      ( "tracer",
        [
          Alcotest.test_case "ring overflow keeps newest" `Quick test_ring_overflow_keeps_newest;
          Alcotest.test_case "entry fields" `Quick test_tracer_entry_fields;
        ] );
      ( "exporter",
        [
          Alcotest.test_case "chrome JSON parses back" `Quick test_chrome_export_parses_back;
          Alcotest.test_case "jsonl lines parse" `Quick test_jsonl_export;
        ] );
      ( "integration",
        [
          Alcotest.test_case "probe ambient sink" `Quick test_probe_ambient;
          Alcotest.test_case "telemetry does not perturb results" `Quick
            test_telemetry_does_not_perturb;
          Alcotest.test_case "merged metrics jobs-independent" `Quick
            test_merged_metrics_jobs_independent;
          Alcotest.test_case "simlog mirror" `Quick test_simlog_mirror;
        ] );
    ]
