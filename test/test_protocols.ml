(* Tests for the protocol substrate (quorum arithmetic, vote tallies, block
   chains) and per-protocol behaviour, driven through the controller with
   small deterministic configurations. *)

module P = Bftsim_protocols
module Core = Bftsim_core
module Net = Bftsim_net

(* --- Quorum --- *)

let test_quorum_thresholds () =
  Alcotest.(check int) "f(4)" 1 (P.Quorum.max_faulty 4);
  Alcotest.(check int) "f(16)" 5 (P.Quorum.max_faulty 16);
  Alcotest.(check int) "quorum(4)" 3 (P.Quorum.quorum 4);
  Alcotest.(check int) "quorum(16)" 11 (P.Quorum.quorum 16);
  Alcotest.(check int) "one_honest(16)" 6 (P.Quorum.one_honest 16);
  Alcotest.(check int) "supermajority(16)" 11 (P.Quorum.supermajority 16)

let test_quorum_intersection () =
  (* Two quorums always share an honest node: 2*quorum - n > f. *)
  List.iter
    (fun n ->
      let f = P.Quorum.max_faulty n in
      let q = P.Quorum.quorum n in
      Alcotest.(check bool)
        (Printf.sprintf "intersection at n=%d" n)
        true
        ((2 * q) - n > f))
    [ 4; 7; 10; 16; 31; 100 ]

let test_quorum_check () =
  P.Quorum.check ~n:4 ~f:1;
  (match P.Quorum.check ~n:3 ~f:1 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "n = 3f accepted");
  match P.Quorum.check ~n:4 ~f:(-1) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "negative f accepted"

(* --- Tally --- *)

let test_tally_dedup () =
  let t = P.Tally.create () in
  Alcotest.(check int) "first vote" 1 (P.Tally.add t "k" ~voter:1);
  Alcotest.(check int) "revote ignored" 1 (P.Tally.add t "k" ~voter:1);
  Alcotest.(check int) "second voter" 2 (P.Tally.add t "k" ~voter:2);
  Alcotest.(check int) "count" 2 (P.Tally.count t "k");
  Alcotest.(check int) "other key empty" 0 (P.Tally.count t "other")

let test_tally_voters () =
  let t = P.Tally.create () in
  List.iter (fun v -> ignore (P.Tally.add t "k" ~voter:v)) [ 5; 3; 9; 3 ];
  Alcotest.(check (list int)) "sorted distinct voters" [ 3; 5; 9 ] (P.Tally.voters t "k");
  Alcotest.(check bool) "has_voted" true (P.Tally.has_voted t "k" ~voter:9);
  Alcotest.(check bool) "has_voted negative" false (P.Tally.has_voted t "k" ~voter:1)

let test_tally_max_count () =
  let t = P.Tally.create () in
  ignore (P.Tally.add t "a" ~voter:1);
  ignore (P.Tally.add t "b" ~voter:1);
  ignore (P.Tally.add t "b" ~voter:2);
  Alcotest.(check (option (pair string int))) "max" (Some ("b", 2)) (P.Tally.max_count t);
  P.Tally.clear t;
  Alcotest.(check (option (pair string int))) "cleared" None (P.Tally.max_count t)

let prop_tally_counts_distinct_voters =
  QCheck.Test.make ~name:"tally count equals distinct voters" ~count:200
    QCheck.(list (pair (int_range 0 5) (int_range 0 20)))
    (fun votes ->
      let t = P.Tally.create () in
      List.iter (fun (key, voter) -> ignore (P.Tally.add t key ~voter)) votes;
      List.for_all
        (fun key ->
          let expected =
            List.sort_uniq compare (List.filter_map (fun (k, v) -> if k = key then Some v else None) votes)
          in
          P.Tally.count t key = List.length expected)
        (List.sort_uniq compare (List.map fst votes)))

(* --- Chain --- *)

let qc view block = { P.Chain.view; block }

let test_chain_genesis () =
  let store = P.Chain.create () in
  Alcotest.(check bool) "genesis present" true
    (P.Chain.find store P.Chain.genesis.digest <> None);
  Alcotest.(check int) "genesis view" 0 P.Chain.genesis.view

let extend store parent view =
  let b = P.Chain.make_block ~view ~parent ~justify:(qc parent.P.Chain.view parent.digest) ~proposer:0 () in
  P.Chain.add store b;
  b

let test_chain_extends () =
  let store = P.Chain.create () in
  let b1 = extend store P.Chain.genesis 1 in
  let b2 = extend store b1 2 in
  let b3 = extend store b2 3 in
  Alcotest.(check bool) "b3 extends genesis" true
    (P.Chain.extends store b3 ~ancestor:P.Chain.genesis.digest);
  Alcotest.(check bool) "b3 extends b1" true (P.Chain.extends store b3 ~ancestor:b1.digest);
  Alcotest.(check bool) "b1 does not extend b3" false (P.Chain.extends store b1 ~ancestor:b3.digest)

let test_chain_between () =
  let store = P.Chain.create () in
  let b1 = extend store P.Chain.genesis 1 in
  let b2 = extend store b1 2 in
  let b3 = extend store b2 3 in
  let path = P.Chain.chain_between store ~after:P.Chain.genesis.digest ~upto:b3 in
  Alcotest.(check (list string))
    "oldest-first path"
    [ b1.digest; b2.digest; b3.digest ]
    (List.map (fun (b : P.Chain.block) -> b.digest) path);
  let partial = P.Chain.chain_between store ~after:b1.digest ~upto:b3 in
  Alcotest.(check int) "partial path" 2 (List.length partial)

let test_chain_three_chain_commit () =
  let store = P.Chain.create () in
  let b1 = extend store P.Chain.genesis 1 in
  let b2 = extend store b1 2 in
  let b3 = extend store b2 3 in
  (match P.Chain.three_chain_tail store (qc 3 b3.digest) with
  | Some tail -> Alcotest.(check string) "commits b1" b1.digest tail.P.Chain.digest
  | None -> Alcotest.fail "consecutive three-chain not detected");
  (* A gap in views must not commit. *)
  let b5 = P.Chain.make_block ~view:5 ~parent:b3 ~justify:(qc 3 b3.digest) ~proposer:0 () in
  P.Chain.add store b5;
  (match P.Chain.three_chain_tail store (qc 5 b5.digest) with
  | None -> ()
  | Some _ -> Alcotest.fail "gapped chain committed")

let test_chain_digest_uniqueness () =
  let a = P.Chain.make_block ~view:1 ~parent:P.Chain.genesis ~justify:P.Chain.genesis_qc ~proposer:0 () in
  let b = P.Chain.make_block ~view:1 ~parent:P.Chain.genesis ~justify:P.Chain.genesis_qc ~proposer:1 () in
  Alcotest.(check bool) "proposer distinguishes digests" true (a.digest <> b.digest)

(* --- Protocol behaviour through the controller --- *)

let run ?(n = 16) ?(seed = 11) ?(lambda = 1000.) ?crashed ?attack ?target ?inputs protocol =
  let config =
    Core.Config.make protocol ~n ~lambda_ms:lambda ~seed
      ~delay:(Net.Delay_model.normal ~mu:100. ~sigma:20.)
      ?crashed ?attack ?decisions_target:target ?inputs
  in
  Core.Controller.run config

let check_live_and_safe name (r : Core.Controller.result) =
  Alcotest.(check bool) (name ^ " reaches target") true (r.outcome = Core.Controller.Reached_target);
  Alcotest.(check bool) (name ^ " agreement") true r.safety_ok

let test_all_protocols_decide () =
  List.iter
    (fun (module Pr : P.Protocol_intf.S) -> check_live_and_safe Pr.name (run Pr.name))
    (P.Registry.all ())

let test_all_protocols_decide_n4 () =
  (* The classic deployment size n = 4, f = 1. *)
  List.iter
    (fun (module Pr : P.Protocol_intf.S) -> check_live_and_safe (Pr.name ^ " n=4") (run ~n:4 Pr.name))
    (P.Registry.all ())

let test_registry () =
  Alcotest.(check int) "eleven built-in protocols (8 paper + 3 extensions)" 11
    (List.length (P.Registry.all ()));
  Alcotest.(check bool) "finds pbft" true (P.Registry.find "pbft" <> None);
  Alcotest.(check bool) "unknown is None" true (P.Registry.find "raft" = None);
  match P.Registry.find_exn "no-such" with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "find_exn accepted unknown name"

let test_pbft_decides_proposers_value () =
  let r = run "pbft" in
  List.iter
    (fun (_, values) ->
      match values with
      | [ v ] -> Alcotest.(check string) "primary 0 proposed" "v0/slot1" v
      | other -> Alcotest.failf "expected one decision, got %d" (List.length other))
    r.decisions

let test_pbft_view_change_on_crashed_primary () =
  (* Node 0 is the view-0 primary; crashing it forces a view change, and the
     next primary's value is decided instead. *)
  let r = run "pbft" ~crashed:[ 0 ] in
  check_live_and_safe "pbft under crashed primary" r;
  let _, values = List.find (fun (node, _) -> node = 1) r.decisions in
  Alcotest.(check string) "primary 1 took over" "v1/slot1" (List.hd values)

let test_pbft_multi_slot () =
  let r = run "pbft" ~target:5 in
  check_live_and_safe "pbft 5 slots" r;
  let _, values = List.find (fun (node, _) -> node = 1) r.decisions in
  Alcotest.(check int) "five decisions" 5 (List.length values);
  Alcotest.(check (list string))
    "slots in order"
    [ "v0/slot1"; "v0/slot2"; "v0/slot3"; "v0/slot4"; "v0/slot5" ]
    values

let test_hotstuff_pipelining_efficiency () =
  (* Chained HotStuff amortizes: 20 decisions should take far less than 20
     times the first decision. *)
  let r1 = run "hotstuff-ns" ~target:1 in
  let r20 = run "hotstuff-ns" ~target:20 in
  check_live_and_safe "hotstuff 20 decisions" r20;
  Alcotest.(check bool) "pipelining amortizes" true (r20.time_ms < 8. *. r1.time_ms)

let test_hotstuff_commit_prefix_consistency () =
  let r = run "hotstuff-ns" ~target:10 in
  (* All nodes' decision sequences must be prefixes of the longest one. *)
  let longest =
    List.fold_left (fun acc (_, values) -> if List.length values > List.length acc then values else acc)
      [] r.decisions
  in
  List.iter
    (fun (node, values) ->
      List.iteri
        (fun k v ->
          Alcotest.(check string) (Printf.sprintf "node %d decision %d" node k) (List.nth longest k) v)
        values)
    r.decisions

let test_librabft_recovers_from_crashed_leaders () =
  let r = run "librabft" ~crashed:[ 1; 2 ] ~target:5 in
  check_live_and_safe "librabft with crashed leaders" r

let test_chained_timeout_reset_difference () =
  (* Under repeated leader failures the naive synchronizer accumulates
     back-off that LibraBFT's pacemaker resolves with timeout certificates:
     LibraBFT must finish significantly earlier. *)
  let crashed = [ 13; 14; 15 ] in
  let hot = run "hotstuff-ns" ~crashed ~target:10 ~seed:3 in
  let libra = run "librabft" ~crashed ~target:10 ~seed:3 in
  Alcotest.(check bool) "libra reaches target" true (libra.outcome = Core.Controller.Reached_target);
  Alcotest.(check bool) "libra beats hotstuff-ns under churn" true (libra.time_ms < hot.time_ms)

let test_algorand_partition_safety () =
  (* During the partition neither side may certify a value: safety without
     liveness, then recovery. *)
  let r =
    run "algorand"
      ~attack:(Core.Config.Partition { first_size = 8; start_ms = 0.; heal_ms = 8000.; drop = true })
  in
  check_live_and_safe "algorand across partition" r;
  Alcotest.(check bool) "no decision before heal" true (r.time_ms >= 8000.)

let test_async_ba_binary_validity () =
  (* Unanimous inputs must decide that very value (validity). *)
  let r = run "async-ba" ~inputs:(Core.Config.Same "1") in
  check_live_and_safe "async-ba unanimous" r;
  List.iter
    (fun (_, values) -> List.iter (fun v -> Alcotest.(check string) "decides input bit" "1" v) values)
    r.decisions

let test_async_ba_mixed_inputs_agree () =
  for seed = 1 to 5 do
    let r = run "async-ba" ~seed ~inputs:Core.Config.Random_binary in
    check_live_and_safe (Printf.sprintf "async-ba seed %d" seed) r;
    let decided = List.concat_map snd r.decisions in
    let distinct = List.sort_uniq compare decided in
    Alcotest.(check int) "single decided bit" 1 (List.length distinct);
    Alcotest.(check bool) "bit is 0 or 1" true (List.mem (List.hd distinct) [ "0"; "1" ])
  done

let test_add_variants_validity () =
  (* With unanimous inputs every ADD+ variant must decide that value. *)
  List.iter
    (fun name ->
      let r = run name ~inputs:(Core.Config.Same "agreed") in
      check_live_and_safe (name ^ " unanimous") r;
      List.iter
        (fun (_, values) ->
          List.iter (fun v -> Alcotest.(check string) (name ^ " validity") "agreed" v) values)
        r.decisions)
    [ "add-v1"; "add-v2"; "add-v3" ]

let test_add_v1_static_attack_costs_f_iterations () =
  let plain = run "add-v1" ~seed:21 in
  let attacked = run "add-v1" ~seed:21 ~attack:(Core.Config.Add_static { f = 3 }) in
  check_live_and_safe "add-v1 static" attacked;
  (* Three wasted iterations of 3 slots each at lambda = 1000. *)
  Alcotest.(check bool) "3 extra iterations" true (attacked.time_ms -. plain.time_ms >= 8000.)

let test_add_v3_shrugs_off_adaptive () =
  let plain = run "add-v3" ~seed:22 in
  let attacked =
    run "add-v3" ~seed:22 ~attack:(Core.Config.Add_rushing_adaptive { budget = Some 5 })
  in
  check_live_and_safe "add-v3 adaptive" attacked;
  Alcotest.(check bool) "attack gains nothing" true
    (attacked.time_ms -. plain.time_ms < 5000.)

let test_add_v2_suffers_adaptive () =
  let plain = run "add-v2" ~seed:23 in
  let attacked =
    run "add-v2" ~seed:23 ~attack:(Core.Config.Add_rushing_adaptive { budget = Some 4 })
  in
  check_live_and_safe "add-v2 adaptive" attacked;
  Alcotest.(check bool) "4 wasted iterations" true (attacked.time_ms -. plain.time_ms >= 12000.)

let test_view_accessor_progresses () =
  (* Protocol_intf.view must reflect logical progress for the tracker: it
     never decreases, and for protocols that consume views/periods in the
     happy path it must actually advance.  (PBFT's view legitimately stays
     at 0 when the primary is honest; its progress lives in slots.) *)
  List.iter
    (fun (name, must_advance) ->
      let config =
        Core.Config.make name ~n:16 ~seed:2
          ~delay:(Net.Delay_model.normal ~mu:100. ~sigma:20.)
          ~view_sample_ms:200.
      in
      let r = Core.Controller.run config in
      if r.view_samples = [] then Alcotest.fail (name ^ ": no view samples");
      ignore
        (List.fold_left
           (fun prev (_, views) ->
             Array.iteri
               (fun i v ->
                 if v < prev.(i) then Alcotest.failf "%s: node %d view went backwards" name i)
               views;
             views)
           (Array.make 16 0) r.view_samples);
      if must_advance then begin
        let _, last = List.nth r.view_samples (List.length r.view_samples - 1) in
        Alcotest.(check bool) (name ^ " views advanced") true (Array.exists (fun v -> v > 0) last)
      end)
    [
      ("pbft", false); ("hotstuff-ns", true); ("librabft", true); ("algorand", true);
      ("add-v1", false); ("async-ba", true);
    ];
  (* A crashed primary forces PBFT's view to move. *)
  let config =
    Core.Config.make "pbft" ~n:16 ~seed:2 ~crashed:[ 0 ]
      ~delay:(Net.Delay_model.normal ~mu:100. ~sigma:20.)
      ~view_sample_ms:200.
  in
  let r = Core.Controller.run config in
  let _, last = List.nth r.view_samples (List.length r.view_samples - 1) in
  Alcotest.(check bool) "pbft view advances after view change" true
    (Array.exists (fun v -> v > 0) last)

let prop_agreement_across_seeds =
  QCheck.Test.make ~name:"agreement holds for every protocol across random seeds" ~count:24
    QCheck.(pair (int_range 0 10) (int_range 0 10_000))
    (fun (proto_idx, seed) ->
      let (module Pr : P.Protocol_intf.S) = List.nth (P.Registry.all ()) proto_idx in
      let r = run Pr.name ~seed in
      r.safety_ok && r.outcome = Core.Controller.Reached_target)

let () =
  let qc = QCheck_alcotest.to_alcotest in
  Alcotest.run "protocols"
    [
      ( "quorum",
        [
          Alcotest.test_case "thresholds" `Quick test_quorum_thresholds;
          Alcotest.test_case "quorum intersection" `Quick test_quorum_intersection;
          Alcotest.test_case "check" `Quick test_quorum_check;
        ] );
      ( "tally",
        [
          Alcotest.test_case "deduplication" `Quick test_tally_dedup;
          Alcotest.test_case "voters" `Quick test_tally_voters;
          Alcotest.test_case "max_count / clear" `Quick test_tally_max_count;
          qc prop_tally_counts_distinct_voters;
        ] );
      ( "chain",
        [
          Alcotest.test_case "genesis" `Quick test_chain_genesis;
          Alcotest.test_case "extends" `Quick test_chain_extends;
          Alcotest.test_case "chain_between" `Quick test_chain_between;
          Alcotest.test_case "three-chain commit rule" `Quick test_chain_three_chain_commit;
          Alcotest.test_case "digest uniqueness" `Quick test_chain_digest_uniqueness;
        ] );
      ( "liveness+safety",
        [
          Alcotest.test_case "all protocols decide (n=16)" `Quick test_all_protocols_decide;
          Alcotest.test_case "all protocols decide (n=4)" `Quick test_all_protocols_decide_n4;
          Alcotest.test_case "registry" `Quick test_registry;
          qc prop_agreement_across_seeds;
        ] );
      ( "pbft",
        [
          Alcotest.test_case "decides primary's value" `Quick test_pbft_decides_proposers_value;
          Alcotest.test_case "view change on crashed primary" `Quick
            test_pbft_view_change_on_crashed_primary;
          Alcotest.test_case "multi-slot SMR" `Quick test_pbft_multi_slot;
        ] );
      ( "chained",
        [
          Alcotest.test_case "pipelining amortizes" `Quick test_hotstuff_pipelining_efficiency;
          Alcotest.test_case "commit prefix consistency" `Quick
            test_hotstuff_commit_prefix_consistency;
          Alcotest.test_case "librabft crashed-leader recovery" `Quick
            test_librabft_recovers_from_crashed_leaders;
          Alcotest.test_case "pacemaker difference under churn" `Slow
            test_chained_timeout_reset_difference;
        ] );
      ( "algorand",
        [ Alcotest.test_case "partition resilience" `Slow test_algorand_partition_safety ] );
      ( "async-ba",
        [
          Alcotest.test_case "unanimous validity" `Quick test_async_ba_binary_validity;
          Alcotest.test_case "mixed inputs agree" `Quick test_async_ba_mixed_inputs_agree;
        ] );
      ( "add+",
        [
          Alcotest.test_case "unanimous validity (all variants)" `Quick test_add_variants_validity;
          Alcotest.test_case "v1 pays f iterations to static attack" `Quick
            test_add_v1_static_attack_costs_f_iterations;
          Alcotest.test_case "v3 immune to adaptive attack" `Quick test_add_v3_shrugs_off_adaptive;
          Alcotest.test_case "v2 pays budget iterations to adaptive attack" `Quick
            test_add_v2_suffers_adaptive;
        ] );
      ( "views",
        [ Alcotest.test_case "view accessor progresses" `Quick test_view_accessor_progresses ] );
    ]
