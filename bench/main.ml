(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (§IV).

   Each section prints the same rows/series the paper reports; absolute
   numbers reflect this simulator on this machine, but the shapes (who wins,
   by roughly what factor, where the crossovers fall) are the reproduction
   targets — EXPERIMENTS.md records the paper-vs-measured comparison.

   Repetitions default to 20 per configuration (the paper uses 100); set
   BFTSIM_REPS to change.  A bechamel micro-benchmark per table/figure
   kernel closes the run.

   Run with: dune exec bench/main.exe
   Options:  --json FILE   write machine-readable per-kernel wall times
             --jobs N      domain-pool size for run_many fan-out
             --quick       only the speedup kernel + LoC tables (CI smoke) *)

module Core = Bftsim_core
module Net = Bftsim_net
module B = Bftsim_baseline
module Wl = Bftsim_workload
module Attack = Bftsim_attack

let reps = Core.Runner.default_reps ()

(* --- command line (kept dependency-free: bench has no cmdliner) --- *)

let json_file = ref None
let jobs = ref None
let quick = ref false
let fig2_max = ref None

let () =
  let rec parse = function
    | [] -> ()
    | "--json" :: file :: rest ->
      json_file := Some file;
      parse rest
    | "--jobs" :: v :: rest ->
      (match int_of_string_opt v with
      | Some j when j >= 1 -> jobs := Some j
      | Some _ | None -> prerr_endline ("bench: ignoring invalid --jobs " ^ v));
      parse rest
    | "--fig2-max" :: v :: rest ->
      (match int_of_string_opt v with
      | Some n when n >= 4 -> fig2_max := Some n
      | Some _ | None -> prerr_endline ("bench: ignoring invalid --fig2-max " ^ v));
      parse rest
    | "--quick" :: rest ->
      quick := true;
      parse rest
    | arg :: rest ->
      prerr_endline ("bench: unknown argument " ^ arg);
      parse rest
  in
  parse (List.tl (Array.to_list Sys.argv))

let effective_jobs () =
  match !jobs with Some j -> j | None -> Core.Parallel.default_jobs ()

(* Per-kernel wall times, accumulated for the --json report. *)
let timings : (string * float) list ref = ref []

let timed name f =
  let t0 = Unix.gettimeofday () in
  f ();
  timings := (name, Unix.gettimeofday () -. t0) :: !timings

(* seq vs par wall time of the run_many speedup kernel, for --json. *)
let speedup_record : (float * float * int * float) option ref = ref None

(* off-vs-off noise floor and metrics/tracing overhead ratios, for --json. *)
let obs_overhead_record : (float * float * float * float) option ref = ref None

(* bare wall time and supervised / supervised-with-deadline ratios, for --json. *)
let supervision_overhead_record : (float * float * float) option ref = ref None

let section title =
  Printf.printf "\n================================================================\n";
  Printf.printf "%s\n" title;
  Printf.printf "================================================================\n%!"

let pp_mean_std ppf (s : Core.Stats.t) = Format.fprintf ppf "%8.2f ± %6.2f" s.mean s.stddev

let latency_summary config =
  let s = Core.Runner.run_many ~reps ?jobs:!jobs config in
  (s.latency_ms, s.messages, s.liveness_failures, s.safety_violations)

let seconds (s : Core.Stats.t) =
  {
    s with
    Core.Stats.mean = s.mean /. 1000.;
    stddev = s.stddev /. 1000.;
    min = s.min /. 1000.;
    max = s.max /. 1000.;
    median = s.median /. 1000.;
    p95 = s.p95 /. 1000.;
    p99 = s.p99 /. 1000.;
  }

(* ---------------- Tables I and II ---------------- *)

let tables () =
  section "Table I — Implemented BFT protocols (LoC measured on this repo)";
  (match Core.Loc_count.find_root () with
  | None -> Printf.printf "  (sources not found; run from the repository root)\n"
  | Some root ->
    Printf.printf "  %-22s %-24s %s\n" "Protocol" "Network Model" "LoC";
    List.iter
      (fun (e : Core.Loc_count.entry) ->
        Printf.printf "  %-22s %-24s %d\n" e.label e.network_model e.loc)
      (Core.Loc_count.table1 ~root);
    section "Table II — Implemented attacks";
    Printf.printf "  %-28s %-22s %s\n" "Attack" "Attacker Capability" "LoC";
    List.iter
      (fun (e : Core.Loc_count.entry) ->
        Printf.printf "  %-28s %-22s %d\n" e.label e.network_model e.loc)
      (Core.Loc_count.table2 ~root))

(* ---------------- Fig 2: simulation time, ours vs packet-level ---------------- *)

(* Per-n wall times of the extended sweep, for --json. *)
let fig2_record : (int * int * float) list ref = ref []

let fig2 ~max_n () =
  section
    (Printf.sprintf
       "Fig 2 — Simulation wall time for PBFT (lambda=1000, N(250,50)); ours vs\n\
        the packet-level baseline (BFTSim substitute; capped at 32 nodes like\n\
        BFTSim's OOM limit).  Extended past the paper's 512-node axis to\n\
        n=%d (one sample above 256; --fig2-max caps the sweep)"
       max_n);
  Printf.printf "  %-6s %14s %24s %10s\n" "nodes" "ours (s)" "baseline (s)" "ratio";
  List.iter
    (fun n ->
      if n <= max_n then begin
        let samples = if n <= 256 then 3 else 1 in
        let ours =
          Core.Stats.of_list
            (List.init samples (fun k ->
                 fst
                   (Core.Controller.wall_clock_of_run
                      { (Core.Experiments.fig2_config ~n) with Core.Config.seed = 1 + k })))
        in
        fig2_record := (n, samples, ours.mean) :: !fig2_record;
        if n <= 32 then begin
          let baseline =
            Core.Stats.of_list
              (List.init 3 (fun k -> fst (B.Engine.wall_clock_of_run ~n ~seed:(1 + k) ())))
          in
          Printf.printf "  %-6d %14.4f %24.3f %9.0fx\n%!" n ours.mean baseline.mean
            (baseline.mean /. Float.max ours.mean 1e-9)
        end
        else
          Printf.printf "  %-6d %14.4f %24s %10s\n%!" n ours.mean
            (Printf.sprintf "(infeasible: ~%d MiB)"
               (B.Engine.estimated_memory_bytes ~n / 1024 / 1024))
            "-"
      end)
    Core.Experiments.fig2_node_counts

(* ---------------- Fig 3: four network environments ---------------- *)

let fig3 () =
  section "Fig 3a — Per-decision latency (s) across four network environments (lambda=1000)";
  Printf.printf "  %-12s" "protocol";
  List.iter (fun (name, _) -> Printf.printf " %17s" name) Core.Experiments.network_environments;
  Printf.printf "\n";
  let msg_rows = ref [] in
  List.iter
    (fun protocol ->
      Printf.printf "  %-12s" protocol;
      let msg_cells =
        List.map
          (fun (_, delay) ->
            let latency, messages, live_fail, safety =
              latency_summary (Core.Experiments.fig3_config ~protocol ~delay ~seed:1)
            in
            assert (safety = 0);
            Format.printf " %a%s" pp_mean_std (seconds latency) (if live_fail > 0 then "!" else " ");
            messages)
          Core.Experiments.network_environments
      in
      msg_rows := (protocol, msg_cells) :: !msg_rows;
      Format.printf "@?";
      Printf.printf "\n%!")
    Core.Experiments.all_protocols;
  section "Fig 3b — Per-decision message count, same environments";
  Printf.printf "  %-12s" "protocol";
  List.iter (fun (name, _) -> Printf.printf " %17s" name) Core.Experiments.network_environments;
  Printf.printf "\n";
  List.iter
    (fun (protocol, cells) ->
      Printf.printf "  %-12s" protocol;
      List.iter (fun m -> Format.printf " %a " pp_mean_std m) cells;
      Format.printf "@?";
      Printf.printf "\n%!")
    (List.rev !msg_rows)

(* ---------------- Fig 4: overestimated timeout ---------------- *)

let fig4 () =
  section
    "Fig 4 — Per-decision latency (s) when the timeout is overestimated\n\
     (lambda 1000..3000, delays fixed at N(250,50)); responsive protocols are flat";
  Printf.printf "  %-12s" "protocol";
  List.iter (fun l -> Printf.printf " %17.0f" l) Core.Experiments.fig4_lambdas;
  Printf.printf "\n";
  List.iter
    (fun protocol ->
      Printf.printf "  %-12s" protocol;
      List.iter
        (fun lambda_ms ->
          let latency, _, _, _ =
            latency_summary (Core.Experiments.fig4_config ~protocol ~lambda_ms ~seed:1)
          in
          Format.printf " %a " pp_mean_std (seconds latency))
        Core.Experiments.fig4_lambdas;
      Format.printf "@?";
      Printf.printf "\n%!")
    Core.Experiments.all_protocols

(* ---------------- Fig 5: underestimated timeout ---------------- *)

let fig5 () =
  section
    "Fig 5 — Partially-synchronous protocols when the delay bound is\n\
     under/over-estimated (lambda 150..2000, delays N(250,50))";
  Printf.printf "  %-12s" "protocol";
  List.iter (fun l -> Printf.printf " %17.0f" l) Core.Experiments.fig5_lambdas;
  Printf.printf "\n";
  List.iter
    (fun protocol ->
      Printf.printf "  %-12s" protocol;
      List.iter
        (fun lambda_ms ->
          let latency, _, _, _ =
            latency_summary (Core.Experiments.fig5_config ~protocol ~lambda_ms ~seed:1)
          in
          Format.printf " %a " pp_mean_std (seconds latency))
        Core.Experiments.fig5_lambdas;
      Format.printf "@?";
      Printf.printf "\n%!")
    Core.Experiments.partially_synchronous

(* ---------------- Fig 6: partition attack ---------------- *)

let fig6 () =
  section
    (Printf.sprintf
       "Fig 6 — Time (s) to first consensus under a two-subnet partition\n\
        attack; cross traffic dropped until the heal at %.0f s (dotted line)"
       (Core.Experiments.fig6_heal_ms /. 1000.));
  Printf.printf "  %-12s %20s %14s\n" "protocol" "consensus at (s)" "overhang (s)";
  List.iter
    (fun protocol ->
      let latency, _, _, _ = latency_summary (Core.Experiments.fig6_config ~protocol ~seed:1) in
      let latency = seconds latency in
      Printf.printf "  %-12s %12.1f ± %4.1f %12.1f\n%!" protocol latency.mean latency.stddev
        (latency.mean -. (Core.Experiments.fig6_heal_ms /. 1000.)))
    Core.Experiments.fig6_protocols

(* ---------------- Fig 7: fail-stop nodes ---------------- *)

let fig7 () =
  section
    "Fig 7 — Per-decision latency (s) across fail-stop node counts\n\
     (lambda=1000, N(1000,300)); '!' marks runs that hit the liveness cap";
  Printf.printf "  %-12s" "protocol";
  List.iter (fun k -> Printf.printf " %17d" k) Core.Experiments.fig7_failstop_counts;
  Printf.printf "\n";
  List.iter
    (fun protocol ->
      Printf.printf "  %-12s" protocol;
      List.iter
        (fun failstop ->
          let latency, _, live_fail, _ =
            latency_summary (Core.Experiments.fig7_config ~protocol ~failstop ~seed:1)
          in
          Format.printf " %a%s" pp_mean_std (seconds latency) (if live_fail > 0 then "!" else " "))
        Core.Experiments.fig7_failstop_counts;
      Format.printf "@?";
      Printf.printf "\n%!")
    Core.Experiments.all_protocols

(* ---------------- Fig 8: attacks on ADD+ ---------------- *)

let fig8 () =
  let sweep label make_config =
    section label;
    Printf.printf "  %-12s" "protocol";
    List.iter (fun f -> Printf.printf " %17d" f) Core.Experiments.fig8_f_values;
    Printf.printf "\n";
    List.iter
      (fun protocol ->
        Printf.printf "  %-12s" protocol;
        List.iter
          (fun f ->
            let latency, _, _, _ = latency_summary (make_config ~protocol ~f) in
            Format.printf " %a " pp_mean_std (seconds latency))
          Core.Experiments.fig8_f_values;
        Format.printf "@?";
        Printf.printf "\n%!")
      Core.Experiments.add_variants
  in
  sweep "Fig 8 (left) — Latency (s) under the static attack (crash first f leaders)"
    (fun ~protocol ~f -> Core.Experiments.fig8_static_config ~protocol ~f ~seed:1);
  sweep "Fig 8 (right) — Latency (s) under the rushing adaptive attack (budget f)" (fun ~protocol ~f ->
      Core.Experiments.fig8_adaptive_config ~protocol ~f ~seed:1)

(* ---------------- Fig 9: view timeline ---------------- *)

let fig9 () =
  section
    "Fig 9 — Each node's view during HotStuff+NS execution\n\
     (lambda=150, N(250,50)); each symbol is a view number";
  let r = Core.Controller.run (Core.Experiments.fig9_config ~seed:9) in
  print_string (Core.View_tracker.render ~width:90 r.view_samples);
  let d = Core.View_tracker.analyze ~sample_ms:250. r.view_samples in
  Printf.printf
    "  run length %.1f s; max view spread %d; %.1f s with diverged views (first at %s)\n%!"
    (r.time_ms /. 1000.) d.max_spread
    (d.time_desynced_ms /. 1000.)
    (match d.first_desync_ms with None -> "-" | Some t -> Printf.sprintf "%.1f s" (t /. 1000.))

(* ---------------- Extensions beyond the paper ---------------- *)

let extensions () =
  section
    "Extension protocols (beyond Table I) — Tendermint and Sync HotStuff\n\
     across the four network environments of Fig 3 (per-decision latency, s)";
  Printf.printf "  %-14s" "protocol";
  List.iter (fun (name, _) -> Printf.printf " %17s" name) Core.Experiments.network_environments;
  Printf.printf "\n";
  List.iter
    (fun protocol ->
      Printf.printf "  %-14s" protocol;
      List.iter
        (fun (_, delay) ->
          let latency, _, live_fail, _ =
            latency_summary (Core.Experiments.fig3_config ~protocol ~delay ~seed:1)
          in
          Format.printf " %a%s" pp_mean_std (seconds latency) (if live_fail > 0 then "!" else " "))
        Core.Experiments.network_environments;
      Format.printf "@?";
      Printf.printf "\n%!")
    Core.Experiments.extension_protocols;
  Printf.printf
    "  note: sync-hotstuff assumes delays <= lambda = 1000 ms; the two\n\
    \  rightmost environments violate that assumption, so it stalls ('!') —\n\
    \  the same reason the paper excludes synchronous protocols from Fig 5.\n" 

let throughput_extension () =
  section
    "Throughput extension (paper §III-A3) — decided values per second when\n\
     per-message crypto costs are charged to sequential per-node CPUs\n\
     (20 decisions, delays N(50,10))";
  Printf.printf "  %-12s %-6s %14s %14s %14s\n" "protocol" "n" "no costs" "commodity" "rsa2048";
  List.iter
    (fun protocol ->
      List.iter
        (fun n ->
          Printf.printf "  %-12s %-6d" protocol n;
          List.iter
            (fun costs ->
              let config =
                Core.Config.make protocol ~n ~seed:1 ~decisions_target:20 ~costs
                  ~delay:(Net.Delay_model.normal ~mu:50. ~sigma:10.)
              in
              let r = Core.Controller.run config in
              Printf.printf " %10.2f/s   " (Core.Controller.throughput r))
            [ Core.Cost_model.zero; Core.Cost_model.commodity; Core.Cost_model.rsa2048 ];
          Printf.printf "\n%!")
        [ 16; 32; 64 ])
    [ "pbft"; "hotstuff-ns" ]

let ablation_pacemaker () =
  section
    "Ablation — HotStuff+NS naive-synchronizer reset policy (DESIGN.md §3.5):\n\
     when the view-doubling back-off resets changes which paper pathologies\n\
     appear (times in s, single seed)";
  let policies =
    [
      ("reset-on-commit", Bftsim_protocols.Context.Reset_on_commit);
      ("never-reset", Bftsim_protocols.Context.Never_reset);
      ("per-view-number", Bftsim_protocols.Context.Per_view_number);
    ]
  in
  Printf.printf "  %-18s %16s %16s %16s\n" "policy" "fig5 (l=150)" "fig7 (5 crash)" "fig6 partition";
  List.iter
    (fun (name, policy) ->
      (* The knob is per-run configuration, not a global: override the field. *)
      let with_policy config = { config with Core.Config.naive_reset = policy } in
      let t1 =
        (Core.Controller.run
           (with_policy (Core.Experiments.fig5_config ~protocol:"hotstuff-ns" ~lambda_ms:150. ~seed:1)))
          .Core.Controller.per_decision_latency_ms /. 1000.
      in
      let t2 =
        (Core.Controller.run
           (with_policy (Core.Experiments.fig7_config ~protocol:"hotstuff-ns" ~failstop:5 ~seed:1)))
          .Core.Controller.per_decision_latency_ms /. 1000.
      in
      let t3 =
        (Core.Controller.run (with_policy (Core.Experiments.fig6_config ~protocol:"hotstuff-ns" ~seed:1)))
          .Core.Controller.time_ms /. 1000.
      in
      Printf.printf "  %-18s %14.2f %16.2f %16.1f\n%!" name t1 t2 t3)
    policies

let chaos_suite () =
  section
    (Printf.sprintf
       "Chaos sweep — crash the f=%d highest-numbered nodes at t=0, restart\n\
        them at %.0f s, watchdog armed at %g*lambda; whether the restarted\n\
        replicas manage to rejoin (there is no state transfer) separates the\n\
        protocols: 'reached-target' means they caught up, 'stalled' means\n\
        the survivors decided but the restarts never did"
       (Bftsim_protocols.Quorum.max_faulty Core.Experiments.default_n)
       (Core.Experiments.chaos_gst_ms /. 1000.)
       Core.Experiments.chaos_watchdog);
  Printf.printf "  %-14s %-28s %14s %12s %10s\n" "protocol" "outcome" "decided at (s)" "violations"
    "msgs";
  List.iter
    (fun protocol ->
      let r = Core.Controller.run (Core.Experiments.chaos_config ~protocol ~seed:1) in
      Printf.printf "  %-14s %-28s %14.1f %12d %10.0f\n%!" protocol
        (Format.asprintf "%a" Core.Controller.pp_outcome r.outcome)
        (r.time_ms /. 1000.)
        (List.length r.violations) r.per_decision_messages)
    Core.Experiments.all_protocols;
  section
    "Chaos overload — crash f+1 nodes forever (beyond every tolerance\n\
     bound); without the watchdog these runs burn to the event cap or the\n\
     time cap, with it they abort as 'stalled' as soon as the plan is spent"
  ;
  Printf.printf "  %-14s %-34s %14s\n" "protocol" "outcome" "aborted at (s)";
  List.iter
    (fun protocol ->
      let r = Core.Controller.run (Core.Experiments.chaos_overload_config ~protocol ~seed:1) in
      Printf.printf "  %-14s %-34s %14.1f\n%!" protocol
        (Format.asprintf "%a" Core.Controller.pp_outcome r.outcome)
        (r.time_ms /. 1000.))
    [ "pbft"; "hotstuff-ns"; "librabft"; "algorand" ];
  section
    (Printf.sprintf
       "Chaos turbulence — 10%% loss + 500 ms delay spikes + 5%% duplication\n\
        until GST at %.0f s, then the delay model shifts to N(100,20)"
       (Core.Experiments.chaos_gst_ms /. 1000.));
  Printf.printf "  %-14s %-28s %14s %12s\n" "protocol" "outcome" "decided at (s)" "violations";
  List.iter
    (fun protocol ->
      let r = Core.Controller.run (Core.Experiments.chaos_turbulence_config ~protocol ~seed:1) in
      Printf.printf "  %-14s %-28s %14.1f %12d\n%!" protocol
        (Format.asprintf "%a" Core.Controller.pp_outcome r.outcome)
        (r.time_ms /. 1000.)
        (List.length r.violations))
    Core.Experiments.partially_synchronous

(* ---------------- Telemetry overhead ---------------- *)

let obs_overhead () =
  section
    "Telemetry overhead (lib/obs) — wall time of one PBFT run (150 decisions,\n\
     N(250,50)) with telemetry off, metrics on, and metrics+tracing on.\n\
     The off/off row is the measurement noise floor: with both switches off\n\
     every probe is a store into a dead cell, so the off column IS the\n\
     disabled-path cost";
  let config =
    {
      (Core.Experiments.fig3_config ~protocol:"pbft"
         ~delay:(Net.Delay_model.normal ~mu:250. ~sigma:50.)
         ~seed:1)
      with
      Core.Config.decisions_target = 150;
      max_time_ms = 3_600_000.;
    }
  in
  let with_telemetry ~metrics ~tracing config =
    { config with Core.Config.telemetry = { Core.Config.metrics; tracing; trace_capacity = 65536 } }
  in
  (* Interleaved rounds after warm-up — one run of each configuration per
     iteration, so drift (thermal, GC heap shape) hits all columns alike —
     summarized by the median, which shrugs off scheduler spikes. *)
  let configs =
    [|
      with_telemetry ~metrics:false ~tracing:false config;
      with_telemetry ~metrics:false ~tracing:false config;
      with_telemetry ~metrics:true ~tracing:false config;
      with_telemetry ~metrics:true ~tracing:true config;
    |]
  in
  let rounds = 7 in
  let samples = Array.map (fun c -> ignore (Core.Controller.run c); ref []) configs in
  for _ = 1 to rounds do
    Array.iteri
      (fun i c -> samples.(i) := fst (Core.Controller.wall_clock_of_run c) :: !(samples.(i)))
      configs
  done;
  let median i = (Core.Stats.of_list !(samples.(i))).Core.Stats.median in
  let off_a = median 0 and off_b = median 1 in
  let metrics_t = median 2 and tracing_t = median 3 in
  let off = Float.min off_a off_b in
  let noise_pct = (Float.max off_a off_b /. off -. 1.) *. 100. in
  let metrics_pct = (metrics_t /. off -. 1.) *. 100. in
  let tracing_pct = (tracing_t /. off -. 1.) *. 100. in
  Printf.printf "  %-22s %10.3f ms\n" "telemetry off" (off *. 1000.);
  Printf.printf "  %-22s %10.3f ms  (%+.1f%% — measurement noise)\n" "telemetry off (again)"
    (Float.max off_a off_b *. 1000.)
    noise_pct;
  Printf.printf "  %-22s %10.3f ms  (%+.1f%%)\n" "metrics on" (metrics_t *. 1000.) metrics_pct;
  Printf.printf "  %-22s %10.3f ms  (%+.1f%%)\n%!" "metrics + tracing" (tracing_t *. 1000.)
    tracing_pct;
  obs_overhead_record := Some (off, noise_pct, metrics_pct, tracing_pct)

(* ---------------- Supervision overhead ---------------- *)

let supervision_overhead () =
  section
    "Supervision overhead (DESIGN.md §3.13) — wall time of one PBFT run\n\
     (150 decisions, N(250,50)) bare, under Supervisor.supervise without a\n\
     deadline (wrapper cost only), and with a 60 s deadline (the event loop\n\
     polls the cancellation latch).  The deadline column is the price every\n\
     campaign run pays";
  let config =
    {
      (Core.Experiments.fig3_config ~protocol:"pbft"
         ~delay:(Net.Delay_model.normal ~mu:250. ~sigma:50.)
         ~seed:1)
      with
      Core.Config.decisions_target = 150;
      max_time_ms = 3_600_000.;
    }
  in
  let bare () = fst (Core.Controller.wall_clock_of_run config) in
  let supervised ~deadline_ms () =
    let policy = { Core.Supervisor.default_policy with deadline_ms; max_retries = 0 } in
    let t = Core.Supervisor.create ~policy () in
    let t0 = Unix.gettimeofday () in
    (match
       Core.Supervisor.supervise t ~key:"bench" (fun ~cancel ->
           Core.Controller.run ~cancel config)
     with
    | Core.Supervisor.Ok _ -> ()
    | _ -> failwith "supervision kernel: the benchmark run must succeed");
    Unix.gettimeofday () -. t0
  in
  (* Interleaved rounds after warm-up, summarized by the median, as in the
     telemetry-overhead kernel: drift hits all columns alike. *)
  let kernels =
    [| bare; supervised ~deadline_ms:None; supervised ~deadline_ms:(Some 60_000.) |]
  in
  let rounds = 7 in
  let samples = Array.map (fun k -> ignore (k ()); ref []) kernels in
  for _ = 1 to rounds do
    Array.iteri (fun i k -> samples.(i) := k () :: !(samples.(i))) kernels
  done;
  let median i = (Core.Stats.of_list !(samples.(i))).Core.Stats.median in
  let bare_t = median 0 and wrap_t = median 1 and deadline_t = median 2 in
  let wrap_pct = (wrap_t /. bare_t -. 1.) *. 100. in
  let deadline_pct = (deadline_t /. bare_t -. 1.) *. 100. in
  Printf.printf "  %-26s %10.3f ms\n" "bare Controller.run" (bare_t *. 1000.);
  Printf.printf "  %-26s %10.3f ms  (%+.1f%%)\n" "supervised, no deadline" (wrap_t *. 1000.)
    wrap_pct;
  Printf.printf "  %-26s %10.3f ms  (%+.1f%%)\n%!" "supervised, 60 s deadline"
    (deadline_t *. 1000.) deadline_pct;
  supervision_overhead_record := Some (bare_t, wrap_pct, deadline_pct)

(* ---------------- Parallel runner speedup ---------------- *)

let speedup () =
  section
    "Parallel runner — wall time of a 20-rep PBFT sweep (100 decisions per\n\
     rep, so per-rep work amortizes the pool start-up), sequential vs the\n\
     domain pool; the two summaries are checked identical (determinism)";
  let config =
    {
      (Core.Experiments.fig3_config ~protocol:"pbft"
         ~delay:(Net.Delay_model.normal ~mu:250. ~sigma:50.)
         ~seed:1)
      with
      Core.Config.decisions_target = 100;
      max_time_ms = 3_600_000.;
    }
  in
  let time jobs =
    let t0 = Unix.gettimeofday () in
    let s = Core.Runner.run_many ~reps:20 ~jobs config in
    (Unix.gettimeofday () -. t0, s)
  in
  let seq_t, seq_s = time 1 in
  let par_jobs = effective_jobs () in
  let par_t, par_s = time par_jobs in
  let fingerprint (s : Core.Runner.summary) =
    List.map
      (fun (r : Core.Controller.result) ->
        (r.per_decision_latency_ms, r.per_decision_messages, r.outcome))
      s.results
  in
  let identical =
    fingerprint seq_s = fingerprint par_s && seq_s.latency_ms = par_s.latency_ms
    && seq_s.messages = par_s.messages
  in
  if not identical then failwith "speedup kernel: parallel summary diverged from sequential";
  let ratio = seq_t /. Float.max par_t 1e-9 in
  Printf.printf "  jobs=1   %8.3f s\n  jobs=%-3d %8.3f s\n  speedup  %8.2fx (identical summaries: %b)\n%!"
    seq_t par_jobs par_t ratio identical;
  speedup_record := Some (seq_t, par_t, par_jobs, ratio)

(* ---------------- Per-event engine cost ---------------- *)

(* events/sec and minor words/event of one Controller.run on the speedup
   kernel's configuration — the two numbers the hot-path work of DESIGN.md
   §3.15 moves.  Minor words come from Gc.quick_stat deltas around the run,
   so the figure includes protocol allocation (payloads), not just the
   engine: it is an end-to-end per-event budget. *)
let event_cost_record : (int * float * float * float) option ref = ref None

let event_cost () =
  section
    "Per-event engine cost — one PBFT n=20 run (100 decisions): wall time,\n\
     events/second and GC minor words allocated per event";
  let config =
    {
      (Core.Experiments.fig3_config ~protocol:"pbft"
         ~delay:(Net.Delay_model.normal ~mu:250. ~sigma:50.)
         ~seed:1)
      with
      Core.Config.decisions_target = 100;
      max_time_ms = 3_600_000.;
    }
  in
  (* Warm-up run so lane growth and code paths are resident. *)
  ignore (Core.Controller.run config);
  let s0 = Gc.quick_stat () in
  let t0 = Unix.gettimeofday () in
  let r = Core.Controller.run config in
  let wall_s = Unix.gettimeofday () -. t0 in
  let s1 = Gc.quick_stat () in
  let events = r.Core.Controller.events_processed in
  let events_per_sec = float_of_int events /. Float.max wall_s 1e-9 in
  let words_per_event =
    (s1.Gc.minor_words -. s0.Gc.minor_words) /. float_of_int (Stdlib.max events 1)
  in
  Printf.printf "  events            %10d\n" events;
  Printf.printf "  wall time         %10.4f s\n" wall_s;
  Printf.printf "  events/sec        %10.0f\n" events_per_sec;
  Printf.printf "  minor words/event %10.1f\n%!" words_per_event;
  event_cost_record := Some (events, wall_s, events_per_sec, words_per_event)

(* ---------------- Workload throughput ---------------- *)

(* The lib/workload curve (DESIGN.md §3.16): open-loop Poisson clients,
   batched heights, end-to-end request latency.  The record keeps the
   whole curve plus the saturation knee, for --json. *)
let load_record : (Wl.Driver.curve * Wl.Driver.point option) option ref = ref None

let load_throughput () =
  section
    "Workload throughput — open-loop Poisson clients into PBFT n=4\n\
     (batch 64@20ms, mempool 4096, lambda=200, N(20,5), 30 heights per\n\
     point); committed req/s plateaus at the saturation knee while the\n\
     offered rate keeps climbing";
  let config =
    Core.Config.make ~n:4 ~lambda_ms:200.
      ~delay:(Net.Delay_model.normal ~mu:20. ~sigma:5.)
      ~decisions_target:30 ~seed:1 "pbft"
  in
  let t =
    Wl.Driver.make
      ~arrival:(Wl.Arrival.poisson ~rate:1.)
      ~policy:(Wl.Batch.make ~max_batch:64 ~max_wait_ms:20.)
      ~mempool_capacity:4096 ()
  in
  let rates = [ 400.; 1600.; 6400.; 12800.; 25600. ] in
  let curve = Wl.Driver.sweep ?jobs:!jobs t config ~rates in
  Format.printf "%a@?" Wl.Driver.pp_curve curve;
  Printf.printf "%!";
  load_record := Some (curve, Wl.Driver.knee curve.Wl.Driver.points)

(* ---------------- Chained pipelining ---------------- *)

(* (protocol, depth-1 tput, depth-4 tput, ratio) per protocol, for --json.
   The PR-9 gate is the hotstuff-ns ratio >= 2. *)
let chained_pipeline_record : (string * float * float * float) list ref = ref []

let chained_pipeline () =
  section
    "Chained pipelining — saturated committed req/s at pipeline depth 1 vs 4\n\
     (n=4, lambda=200, N(20,5), batch 64@20ms, 20 heights, offered 4000/s).\n\
     Chained protocols pack [depth] batch chunks into each block, so one\n\
     three-chain commit lands a whole window; PBFT instead widens its slot\n\
     window, overlapping independent instances";
  Printf.printf "  %-14s %14s %14s %10s\n" "protocol" "depth 1" "depth 4" "ratio";
  chained_pipeline_record := [];
  List.iter
    (fun protocol ->
      let tput pipeline =
        let config =
          Core.Config.make protocol ~n:4 ~lambda_ms:200.
            ~delay:(Net.Delay_model.normal ~mu:20. ~sigma:5.)
            ~decisions_target:20 ~seed:1 ~pipeline
        in
        let t =
          Wl.Driver.make
            ~arrival:(Wl.Arrival.poisson ~rate:1.)
            ~policy:(Wl.Batch.make ~max_batch:64 ~max_wait_ms:20.)
            ~mempool_capacity:4096 ()
        in
        let p, _ = Wl.Driver.run_point t ~rate:4000. config in
        p.Wl.Driver.throughput
      in
      let t1 = tput 1 and t4 = tput 4 in
      let ratio = t4 /. Float.max t1 1e-9 in
      chained_pipeline_record := (protocol, t1, t4, ratio) :: !chained_pipeline_record;
      Printf.printf "  %-14s %12.1f/s %12.1f/s %9.2fx\n%!" protocol t1 t4 ratio)
    [ "hotstuff-ns"; "librabft"; "tendermint"; "pbft" ];
  chained_pipeline_record := List.rev !chained_pipeline_record

(* ---------------- Recovery overhead ---------------- *)

(* (protocol, clean_s, lossy_s, chaos_s, catchup_ms, retrans) per protocol,
   for --json.  The PR-10 gate is that every chaos run reaches its target. *)
let recovery_record : (string * float * float * float * float * int) list ref = ref []

let recovery_overhead () =
  section
    "Recovery overhead — simulated time (s) to 30 decisions for the\n\
     protocols with a recovery story: clean network, 5% loss over the\n\
     reliable channel, and the same loss with node 2 crashed at 0.5 s and\n\
     restarted at 2 s (WAL rehydration + state transfer).  'catchup' is how\n\
     long the restarted replica took to rejoin after its restart;\n\
     'retrans' counts reliable-channel retransmissions in the chaos run";
  Printf.printf "  %-14s %10s %10s %10s %10s %12s %9s\n" "protocol" "clean" "lossy" "chaos"
    "overhead" "catchup (ms)" "retrans";
  recovery_record := [];
  let counter_of r name =
    match r.Core.Controller.metrics with
    | None -> 0
    | Some m ->
      (match List.assoc_opt name (Bftsim_obs.Metrics.snapshot m) with
      | Some (Bftsim_obs.Metrics.Counter_v c) -> c
      | _ -> 0)
  in
  let catchup_of r =
    match r.Core.Controller.metrics with
    | None -> 0.
    | Some m ->
      (match List.assoc_opt "recovery.catchup_ms" (Bftsim_obs.Metrics.snapshot m) with
      | Some (Bftsim_obs.Metrics.Histogram_v h) -> h.Bftsim_obs.Metrics.s_sum
      | _ -> 0.)
  in
  List.iter
    (fun protocol ->
      let base =
        {
          (Core.Config.make protocol ~n:7 ~seed:1 ~decisions_target:30 ~lambda_ms:200.
             ~delay:(Net.Delay_model.normal ~mu:50. ~sigma:10.))
          with
          Core.Config.telemetry =
            { Core.Config.default_telemetry with Core.Config.metrics = true };
          max_time_ms = 600_000.;
        }
      in
      let lossy =
        {
          base with
          Core.Config.loss = Net.Loss_model.make ~drop:0.05 ();
          reliable = true;
        }
      in
      let chaos =
        {
          lossy with
          Core.Config.chaos =
            Attack.Fault_schedule.crash_and_restart ~nodes:[ 2 ] ~crash_ms:500.
              ~restart_ms:2_000.;
        }
      in
      let run config =
        let r = Core.Controller.run config in
        if r.Core.Controller.outcome <> Core.Controller.Reached_target then
          failwith
            (Printf.sprintf "recovery kernel: %s did not reach its decision target" protocol);
        r
      in
      let clean_r = run base and lossy_r = run lossy and chaos_r = run chaos in
      let s r = r.Core.Controller.time_ms /. 1000. in
      let catchup = catchup_of chaos_r and retrans = counter_of chaos_r "net.retrans" in
      recovery_record :=
        (protocol, s clean_r, s lossy_r, s chaos_r, catchup, retrans) :: !recovery_record;
      Printf.printf "  %-14s %9.2fs %9.2fs %9.2fs %9.2fx %12.1f %9d\n%!" protocol (s clean_r)
        (s lossy_r) (s chaos_r)
        (s chaos_r /. Float.max (s clean_r) 1e-9)
        catchup retrans)
    [ "pbft"; "hotstuff-ns"; "librabft" ];
  recovery_record := List.rev !recovery_record

(* ---------------- JSON report ---------------- *)

let write_json path =
  let oc = open_out path in
  let out fmt = Printf.fprintf oc fmt in
  out "{\n";
  out "  \"schema\": \"bftsim-bench-1\",\n";
  out "  \"reps\": %d,\n" reps;
  out "  \"jobs\": %d,\n" (effective_jobs ());
  out "  \"recommended_domains\": %d,\n" (Domain.recommended_domain_count ());
  (match !speedup_record with
  | Some (seq_t, par_t, par_jobs, ratio) ->
    (* The pr2 fields compare against the same kernel as recorded in
       BENCH_pr2.json (seq 1.628 s, par 3.307 s at 4 jobs — a 0.49x
       "speedup" caused by oversubscribing domains past the hardware);
       [vs_pr2_par] is how much faster the parallel path itself got. *)
    let pr2_seq = 1.627905 and pr2_par = 3.307015 in
    out
      "  \"run_many_speedup\": { \"kernel\": \"pbft-20rep-sweep\", \"seq_s\": %.6f, \"par_s\": \
       %.6f, \"par_jobs\": %d, \"speedup\": %.3f, \"host_domains\": %d, \"pr2_seq_s\": %.6f, \
       \"pr2_par_s\": %.6f, \"vs_pr2_seq\": %.3f, \"vs_pr2_par\": %.3f },\n"
      seq_t par_t par_jobs ratio
      (Domain.recommended_domain_count ())
      pr2_seq pr2_par (pr2_seq /. Float.max par_t 1e-9)
      (pr2_par /. Float.max par_t 1e-9)
  | None -> ());
  (match !event_cost_record with
  | Some (events, wall_s, events_per_sec, words_per_event) ->
    out
      "  \"event_cost\": { \"kernel\": \"pbft-n20-100dec\", \"events\": %d, \"wall_s\": %.6f, \
       \"events_per_sec\": %.0f, \"minor_words_per_event\": %.1f },\n"
      events wall_s events_per_sec words_per_event
  | None -> ());
  (match !obs_overhead_record with
  | Some (off_s, noise_pct, metrics_pct, tracing_pct) ->
    out
      "  \"obs_overhead\": { \"kernel\": \"pbft-150dec\", \"off_s\": %.6f, \"noise_pct\": %.2f, \
       \"metrics_pct\": %.2f, \"tracing_pct\": %.2f },\n"
      off_s noise_pct metrics_pct tracing_pct
  | None -> ());
  (match !supervision_overhead_record with
  | Some (bare_s, wrap_pct, deadline_pct) ->
    out
      "  \"supervision_overhead\": { \"kernel\": \"pbft-150dec\", \"bare_s\": %.6f, \
       \"wrap_pct\": %.2f, \"deadline_pct\": %.2f },\n"
      bare_s wrap_pct deadline_pct
  | None -> ());
  (match List.rev !fig2_record with
  | [] -> ()
  | rows ->
    out "  \"fig2_extended\": { \"kernel\": \"pbft-l1000-N(250,50)\", \"points\": [\n";
    List.iteri
      (fun i (n, samples, wall_s) ->
        out "    { \"n\": %d, \"samples\": %d, \"wall_s\": %.6f }%s\n" n samples wall_s
          (if i = List.length rows - 1 then "" else ","))
      rows;
    out "  ] },\n");
  (match !load_record with
  | Some (curve, knee) ->
    out "  \"load_throughput\": { \"kernel\": \"pbft-n4-poisson-sweep\"";
    (match knee with
    | Some k ->
      out ", \"knee_rate\": %g, \"knee_throughput\": %.1f" k.Wl.Driver.rate
        k.Wl.Driver.throughput
    | None -> ());
    out ", \"curve\": %s },\n" (Bftsim_obs.Json.to_string (Wl.Driver.curve_to_json curve))
  | None -> ());
  (match !recovery_record with
  | [] -> ()
  | rows ->
    out "  \"recovery_overhead\": { \"kernel\": \"n7-30dec-loss5-crash500-restart2000\", \"rows\": [\n";
    List.iteri
      (fun i (protocol, clean_s, lossy_s, chaos_s, catchup_ms, retrans) ->
        out
          "    { \"protocol\": %S, \"clean_s\": %.4f, \"lossy_s\": %.4f, \"chaos_s\": %.4f, \
           \"catchup_ms\": %.1f, \"retrans\": %d }%s\n"
          protocol clean_s lossy_s chaos_s catchup_ms retrans
          (if i = List.length rows - 1 then "" else ","))
      rows;
    out "  ] },\n");
  (match !chained_pipeline_record with
  | [] -> ()
  | rows ->
    out "  \"chained_pipeline\": { \"kernel\": \"n4-sat4000-depth1v4\", \"rows\": [\n";
    List.iteri
      (fun i (protocol, t1, t4, ratio) ->
        out
          "    { \"protocol\": %S, \"depth1_tput\": %.1f, \"depth4_tput\": %.1f, \"ratio\": %.2f \
           }%s\n"
          protocol t1 t4 ratio
          (if i = List.length rows - 1 then "" else ","))
      rows;
    out "  ] },\n");
  out "  \"kernels\": [\n";
  let rows = List.rev !timings in
  List.iteri
    (fun i (name, wall_s) ->
      out "    { \"name\": %S, \"wall_s\": %.6f }%s\n" name wall_s
        (if i = List.length rows - 1 then "" else ","))
    rows;
  out "  ]\n}\n";
  close_out oc;
  Printf.printf "\nwrote %s\n%!" path

(* ---------------- Bechamel kernels ---------------- *)

let bechamel_kernels () =
  let open Bechamel in
  let open Toolkit in
  section
    "Bechamel — wall-time micro-benchmarks, one Test.make per table/figure\n\
     kernel (cost of one simulated run of that experiment)";
  let one name thunk = Test.make ~name (Staged.stage thunk) in
  let delay = Net.Delay_model.normal ~mu:250. ~sigma:50. in
  let tests =
    Test.make_grouped ~name:"bftsim"
      [
        one "table1-loc-inventory" (fun () ->
            match Core.Loc_count.find_root () with
            | Some root -> ignore (Core.Loc_count.table1 ~root)
            | None -> ());
        one "table2-loc-inventory" (fun () ->
            match Core.Loc_count.find_root () with
            | Some root -> ignore (Core.Loc_count.table2 ~root)
            | None -> ());
        one "fig2-ours-n32" (fun () ->
            ignore (Core.Controller.run (Core.Experiments.fig2_config ~n:32)));
        one "fig2-baseline-n8" (fun () -> ignore (B.Engine.run ~n:8 ~seed:1 ()));
        one "fig3-pbft-N(250,50)" (fun () ->
            ignore (Core.Controller.run (Core.Experiments.fig3_config ~protocol:"pbft" ~delay ~seed:1)));
        one "fig4-algorand-l3000" (fun () ->
            ignore
              (Core.Controller.run
                 (Core.Experiments.fig4_config ~protocol:"algorand" ~lambda_ms:3000. ~seed:1)));
        one "fig5-hotstuff-l150" (fun () ->
            ignore
              (Core.Controller.run
                 (Core.Experiments.fig5_config ~protocol:"hotstuff-ns" ~lambda_ms:150. ~seed:1)));
        one "fig6-librabft-partition" (fun () ->
            ignore (Core.Controller.run (Core.Experiments.fig6_config ~protocol:"librabft" ~seed:1)));
        one "fig7-pbft-failstop5" (fun () ->
            ignore
              (Core.Controller.run (Core.Experiments.fig7_config ~protocol:"pbft" ~failstop:5 ~seed:1)));
        one "fig8-addv2-adaptive" (fun () ->
            ignore
              (Core.Controller.run
                 (Core.Experiments.fig8_adaptive_config ~protocol:"add-v2" ~f:3 ~seed:1)));
        one "fig9-viewtrace" (fun () ->
            ignore (Core.Controller.run (Core.Experiments.fig9_config ~seed:9)));
      ]
  in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) ~kde:None () in
  let raw = Benchmark.all cfg Instance.[ monotonic_clock ] tests in
  let ols = Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |] in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows =
    Hashtbl.fold
      (fun name v acc ->
        match Analyze.OLS.estimates v with
        | Some (est :: _) -> (name, est) :: acc
        | _ -> (name, Float.nan) :: acc)
      results []
  in
  List.iter (fun (name, ns) -> Printf.printf "  %-40s %12.3f ms/run\n" name (ns /. 1e6))
    (List.sort compare rows)

let () =
  Core.Parallel.tune_gc ();
  Printf.printf "BFT simulator benchmark harness — %d repetitions per configuration\n" reps;
  Printf.printf "(set BFTSIM_REPS to change; the paper uses 100); jobs=%d\n%!" (effective_jobs ());
  (* The extended Fig 2 axis reaches n=4096; --quick caps it at 512 so
     the CI smoke stays in budget (override with --fig2-max). *)
  let fig2_cap = match !fig2_max with Some n -> n | None -> if !quick then 512 else 4096 in
  if !quick then begin
    (* CI smoke: the LoC tables (cheap), the capped Fig 2 sweep, the
       workload-throughput kernel, the parallel-runner kernel, the
       per-event cost kernel and the telemetry-overhead kernel. *)
    timed "tables" tables;
    timed "fig2" (fig2 ~max_n:fig2_cap);
    timed "load-throughput" load_throughput;
    timed "chained-pipeline" chained_pipeline;
    timed "recovery-overhead" recovery_overhead;
    timed "obs-overhead" obs_overhead;
    timed "supervision-overhead" supervision_overhead;
    timed "event-cost" event_cost;
    timed "run_many-speedup" speedup
  end
  else begin
    timed "tables" tables;
    timed "fig2" (fig2 ~max_n:fig2_cap);
    timed "load-throughput" load_throughput;
    timed "chained-pipeline" chained_pipeline;
    timed "fig3" fig3;
    timed "fig4" fig4;
    timed "fig5" fig5;
    timed "fig6" fig6;
    timed "fig7" fig7;
    timed "fig8" fig8;
    timed "fig9" fig9;
    timed "extensions" extensions;
    timed "throughput-extension" throughput_extension;
    timed "ablation-pacemaker" ablation_pacemaker;
    timed "chaos-suite" chaos_suite;
    timed "recovery-overhead" recovery_overhead;
    timed "obs-overhead" obs_overhead;
    timed "supervision-overhead" supervision_overhead;
    timed "event-cost" event_cost;
    timed "run_many-speedup" speedup;
    timed "bechamel-kernels" bechamel_kernels
  end;
  Option.iter write_json !json_file;
  Printf.printf "\nAll experiments completed.\n"
