(* Extending the simulator (paper §III-A): a user-written protocol and a
   user-written attacker, wired in through the public API.

   The protocol below is a deliberately simple "rotating echo" consensus —
   the leader broadcasts its value, everyone echoes, a node decides on n-f
   matching echoes, and a timeout rotates the leader.  It is not Byzantine
   fault-tolerant against equivocation; the point is to show that the
   paper's claim holds here too: a complete protocol needs only
   [on_start] / [on_message] / [on_timer] plus [Context.decide], and a
   custom attacker needs only [attack] / [on_time_event].

   Run with: dune exec examples/custom_protocol.exe *)

module Core = Bftsim_core
module Net = Bftsim_net
module Attack = Bftsim_attack
module P = Bftsim_protocols

(* --- the custom protocol --- *)

type Net.Message.payload +=
  | Echo_propose of { round : int; value : string }
  | Echo of { round : int; value : string }

type Bftsim_sim.Timer.payload += Round_timeout of { round : int }

module Rotating_echo = struct
  let name = "rotating-echo"

  let model = P.Protocol_intf.Partially_synchronous

  let pipelined = false

  type node = {
    mutable round : int;
    mutable decided : bool;
    echoes : (int * string) P.Tally.t;
  }

  let create _ctx = { round = 0; decided = false; echoes = P.Tally.create () }

  let propose t ctx =
    if P.Context.is_leader_round_robin ctx ~view:t.round then
      P.Context.broadcast ctx ~tag:"echo-propose"
        (Echo_propose { round = t.round; value = ctx.P.Context.input })

  let arm_timer t ctx =
    ignore
      (ctx.P.Context.set_timer
         ~delay_ms:(3. *. ctx.P.Context.lambda_ms)
         ~tag:"round-timeout"
         (Round_timeout { round = t.round }))

  let on_start t ctx =
    arm_timer t ctx;
    propose t ctx

  let on_message t ctx (msg : Net.Message.t) =
    match msg.payload with
    | Echo_propose { round; value } ->
      if round = t.round && msg.src = P.Context.leader_round_robin ctx ~view:round then
        P.Context.broadcast ctx ~tag:"echo" (Echo { round; value })
    | Echo { round; value } ->
      let votes = P.Tally.add t.echoes (round, value) ~voter:msg.src in
      if votes >= P.Quorum.quorum ctx.P.Context.n && not t.decided then begin
        t.decided <- true;
        ctx.P.Context.decide value
      end
    | _ -> ()

  let on_timer t ctx (timer : Bftsim_sim.Timer.t) =
    match timer.payload with
    | Round_timeout { round } ->
      if round = t.round && not t.decided then begin
        t.round <- t.round + 1;
        arm_timer t ctx;
        propose t ctx
      end
    | _ -> ()

  let on_restart = on_start

  let view t = t.round
end

(* --- the custom attacker: crash whichever leader is about to propose --- *)

let leader_hunter ~budget =
  let spent = ref 0 in
  let attack (env : Attack.Attacker.env) (msg : Net.Message.t) =
    (match msg.payload with
    | Echo_propose _ when !spent < budget && not (env.is_corrupted msg.src) ->
      (* Rushing: the proposal is observed in flight, and its sender is
         corrupted before any copy is delivered. *)
      if env.corrupt msg.src then incr spent
    | _ -> ());
    Attack.Attacker.drop_from_corrupted env msg
  in
  {
    Attack.Attacker.name = Printf.sprintf "leader-hunter(budget=%d)" budget;
    on_start = (fun _ -> ());
    attack;
    on_time_event = (fun _ _ -> ());
  }

let () =
  (* One registration makes the protocol available to configs, the CLI and
     the sweep harness alike. *)
  P.Registry.register (module Rotating_echo);
  let config = Core.Config.make "rotating-echo" ~n:16 ~seed:5 in
  let benign = Core.Controller.run config in
  Format.printf "benign run    : %a in %.2f s, %d messages@." Core.Controller.pp_outcome
    benign.outcome (benign.time_ms /. 1000.) benign.messages_sent;
  let attacked = Core.Controller.run ~attacker:(leader_hunter ~budget:3) config in
  Format.printf "under attack  : %a in %.2f s, corrupted leaders: %s@." Core.Controller.pp_outcome
    attacked.outcome
    (attacked.time_ms /. 1000.)
    (String.concat ", " (List.map string_of_int attacked.corrupted));
  Format.printf
    "@.The attacker silenced the first %d leaders the moment they proposed;@.\
     the rotation survived them and the run still decided (%.1fx slower).@."
    3
    (attacked.time_ms /. benign.time_ms)
