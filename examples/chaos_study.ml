(* Chaos study: the declarative fault-schedule DSL end to end.

   Three escalating scenarios on PBFT, then a cross-protocol comparison:

   1. crash-and-recover — fail-stop f nodes at t=0, restart them at 15 s.
     The survivors keep deciding; whether the restarts rejoin (there is
     no state transfer) is the measurement.
   2. overload — crash f+1 nodes forever.  No quorum can form, so without
     a watchdog the run burns to its time cap; with one it aborts as
     'stalled' as soon as the fault plan has no more relief scheduled.
   3. turbulence — 15 s of 10% loss, 500 ms delay spikes and 5%
     duplication, then a GST shift to a fast stable delay model.

   Every schedule is plain data: the same value drives the attacker's
   message verdicts, the controller's timer suppression and watchdog, and
   the online invariant monitors — and because all chaos randomness comes
   from the seeded attacker stream, each run replays deterministically.

   Run with: dune exec examples/chaos_study.exe *)

module Core = Bftsim_core
module Net = Bftsim_net
module Fault_schedule = Bftsim_attack.Fault_schedule

let f = Bftsim_protocols.Quorum.max_faulty Core.Experiments.default_n

let report label (r : Core.Controller.result) =
  Format.printf "  %-22s %-30s decided-at %6.1f s  violations %d@." label
    (Format.asprintf "%a" Core.Controller.pp_outcome r.outcome)
    (r.time_ms /. 1000.)
    (List.length r.violations)

let crash_and_recover () =
  Format.printf "@.1. Crash-and-recover on PBFT (f=%d nodes down from 0 s to 15 s):@." f;
  let chaos =
    Fault_schedule.crash_and_recover
      ~nodes:(List.init f (fun i -> Core.Experiments.default_n - 1 - i))
      ~crash_ms:0. ~recover_ms:15_000.
  in
  Format.printf "  schedule: %s@." (Fault_schedule.describe chaos);
  let config = Core.Config.make "pbft" ~seed:7 ~decisions_target:1 ~chaos ~watchdog:10. in
  report "pbft" (Core.Controller.run config)

let overload () =
  Format.printf
    "@.2. Overload — crash f+1=%d nodes forever; the watchdog converts the@.\
    \   inevitable non-termination into 'stalled' within 10*lambda:@."
    (f + 1);
  let chaos =
    List.map
      (fun i ->
        { Fault_schedule.at_ms = 0.; action = Fault_schedule.Crash (Core.Experiments.default_n - 1 - i) })
      (List.init (f + 1) Fun.id)
  in
  List.iter
    (fun (label, watchdog) ->
      let config = Core.Config.make "pbft" ~seed:7 ~decisions_target:1 ~chaos ?watchdog in
      report label (Core.Controller.run config))
    [ ("without watchdog", None); ("watchdog 10*lambda", Some 10.) ]

let turbulence () =
  Format.printf "@.3. Turbulence until GST at 15 s, then N(100,20) — parsed from the CLI syntax:@.";
  let spec = "loss:0.1@0-15000;spike:500@0-15000;dup:0.05@0-15000;gst:normal:100,20@15000" in
  Format.printf "  --chaos \"%s\"@." spec;
  let chaos =
    match Fault_schedule.of_string spec with Ok plan -> plan | Error e -> failwith e
  in
  let config =
    Core.Config.make "pbft" ~seed:7 ~decisions_target:1 ~chaos ~watchdog:10.
      ~delay:(Net.Delay_model.normal ~mu:500. ~sigma:200.)
  in
  report "pbft" (Core.Controller.run config)

let cross_protocol () =
  Format.printf "@.4. The canonical crash-and-recover scenario across all eight protocols:@.";
  List.iter
    (fun protocol ->
      report protocol (Core.Controller.run (Core.Experiments.chaos_config ~protocol ~seed:7)))
    Core.Experiments.all_protocols;
  Format.printf
    "@.'reached-target' protocols re-integrated their restarted replicas;@.\
     'stalled' ones kept the survivors live but the restarts never caught@.\
     up — the cost of recovery without state transfer.@."

let () =
  crash_and_recover ();
  overload ();
  turbulence ();
  cross_protocol ()
